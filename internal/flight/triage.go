package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"retrolock/internal/rom"
	"retrolock/internal/vm"
)

// Offline triage: given one incident bundle (or one per site), bisect the
// exact first divergent frame by deterministic replay, identify which
// replica deviated from its own recording (the nondeterministic site), and
// localize the damage by diffing the replayed expected state against the
// state the session actually held at incident time.

// DiffKind labels one entry of a state diff.
type DiffKind string

const (
	DiffReg DiffKind = "reg"
	DiffPC  DiffKind = "pc"
	DiffRAM DiffKind = "ram"
)

// StateDiff is one disagreement between the replayed (expected) machine
// state and the recorded (actual) one.
type StateDiff struct {
	Kind DiffKind `json:"kind"`
	// Index is the register number (DiffReg) or RAM address (DiffRAM);
	// unused for DiffPC.
	Index int `json:"index"`
	// Want is the expected (clean-replay) value, Got the recorded one.
	Want uint64 `json:"want"`
	Got  uint64 `json:"got"`
}

func (d StateDiff) String() string {
	switch d.Kind {
	case DiffReg:
		return fmt.Sprintf("r%d: want %#x, got %#x", d.Index, d.Want, d.Got)
	case DiffPC:
		return fmt.Sprintf("pc: want %#x, got %#x", d.Want, d.Got)
	default:
		return fmt.Sprintf("ram[%#04x]: want %#02x, got %#02x", d.Index, d.Want, d.Got)
	}
}

// SiteAnalysis is the per-bundle replay verdict.
type SiteAnalysis struct {
	Site int `json:"site"`
	// ReplayedFrom is the frame the deterministic replay started after
	// (-1: replayed from boot; -2: replay impossible, see ReplayErr).
	ReplayedFrom int64 `json:"replayed_from"`
	// ReplayedTo is the last frame the replay executed.
	ReplayedTo int64 `json:"replayed_to"`
	// Deterministic reports whether the clean replay reproduced every
	// recorded per-frame hash. False means this site's machine deviated
	// from its own input record — the replica that broke determinism.
	Deterministic bool `json:"deterministic"`
	// DeviationFrame is the first frame whose replayed hash disagrees with
	// the recording (-1 when Deterministic).
	DeviationFrame int64 `json:"deviation_frame"`
	// Diff lists expected-vs-actual state disagreements at the incident
	// snapshot (nil when the replay matched or no final state exists).
	Diff []StateDiff `json:"diff,omitempty"`
	// DiffTruncated notes that Diff was capped.
	DiffTruncated bool `json:"diff_truncated,omitempty"`
	// ReplayErr explains why a replay could not run ("" when it did).
	ReplayErr string `json:"replay_err,omitempty"`
}

// TimelineEvent is one causally-aligned entry of the merged two-site trace
// around the divergence.
type TimelineEvent struct {
	Site  int    `json:"site"`
	Frame int64  `json:"frame"`
	AtNs  int64  `json:"at_ns"`
	Kind  string `json:"kind"`
	Arg   int64  `json:"arg"`
}

// InputLatencyRow is one frame's input-journey measurements from a bundle's
// span section, reported around the divergence frame. Durations are ns; 0
// means the journey leg never closed (endpoint unstamped or offset unknown).
type InputLatencyRow struct {
	Site  int   `json:"site"`
	Frame int64 `json:"frame"`
	// CrossNs is the end-to-end cross-site input latency: peer press to
	// local execution.
	CrossNs int64 `json:"cross_ns,omitempty"`
	// LocalNs is the local-lag latency: own press to own execution.
	LocalNs int64 `json:"local_ns,omitempty"`
	// NetNs is the one-way wire latency: peer send to local receive.
	NetNs int64 `json:"net_ns,omitempty"`
	// SkewNs is |local frame begin - remote frame begin|.
	SkewNs int64 `json:"skew_ns,omitempty"`
	// Retransmits counts ARQ retransmissions attributed to this frame.
	Retransmits int64 `json:"retransmits,omitempty"`
}

// Report is the triage outcome.
type Report struct {
	// FirstDivergentFrame is the bisected first frame on which the
	// replicas (or a replica and its own recording) disagree; -1 unknown.
	FirstDivergentFrame int64 `json:"first_divergent_frame"`
	// Method says how the frame was determined.
	Method string `json:"method"`
	// NondeterministicSite is the site whose replay deviated from its own
	// recording (-1 when no replay deviated or none could run).
	NondeterministicSite int `json:"nondeterministic_site"`
	// Sites holds one analysis per supplied bundle.
	Sites []SiteAnalysis `json:"sites"`
	// Timeline is the merged trace around the divergence, ordered by
	// (frame, timestamp) so the two sites' records align causally even
	// when their clocks do not.
	Timeline []TimelineEvent `json:"timeline,omitempty"`
	// InputLatency holds per-frame input-journey measurements around the
	// divergence, one row per site per frame, from the bundles' span
	// sections (empty when the bundles carry none or the frame is unknown).
	InputLatency []InputLatencyRow `json:"input_latency,omitempty"`
}

// timelineWindow is how many frames around the divergence the merged
// timeline retains on each side.
const timelineWindow = 30

// maxDiffEntries caps the reported state diff (a wildly corrupted RAM image
// would otherwise produce 64K lines).
const maxDiffEntries = 64

// Analyze triages one or two bundles. With two (one per site) the first
// divergent frame comes from direct per-frame hash comparison; with one, from
// the replay's deviation against its own recording, falling back to the
// embedded remote-digest log (HashInterval granularity).
func Analyze(bundles ...*Bundle) (*Report, error) {
	if len(bundles) == 0 || len(bundles) > 2 {
		return nil, fmt.Errorf("flight: Analyze needs 1 or 2 bundles, got %d", len(bundles))
	}
	r := &Report{FirstDivergentFrame: -1, NondeterministicSite: -1}

	if len(bundles) == 2 {
		if f, ok := crossBundleDivergence(bundles[0], bundles[1]); ok {
			r.FirstDivergentFrame = f
			r.Method = "cross-bundle per-frame hash comparison"
		}
	}

	for _, b := range bundles {
		sa := analyzeSite(b)
		r.Sites = append(r.Sites, sa)
		if !sa.Deterministic && sa.DeviationFrame >= 0 {
			if r.NondeterministicSite < 0 {
				r.NondeterministicSite = sa.Site
			}
			// A replay deviation pins the divergence exactly even from a
			// single bundle; prefer it over nothing, and cross-check it
			// against the two-bundle answer when both exist.
			if r.FirstDivergentFrame < 0 {
				r.FirstDivergentFrame = sa.DeviationFrame
				r.Method = "replay deviation from own recording"
			}
		}
	}

	if r.FirstDivergentFrame < 0 {
		// Last resort: the bundle's own hashes against the peer digests it
		// received — HashInterval granularity, but better than nothing.
		for _, b := range bundles {
			if f, ok := remoteDigestDivergence(b); ok && (r.FirstDivergentFrame < 0 || f < r.FirstDivergentFrame) {
				r.FirstDivergentFrame = f
				r.Method = "remote digest comparison (HashInterval granularity)"
			}
		}
	}

	r.Timeline = mergeTimelines(bundles, r.FirstDivergentFrame)
	r.InputLatency = spanLatencies(bundles, r.FirstDivergentFrame)
	return r, nil
}

// spanLatencies derives per-frame input-journey rows from the bundles' span
// sections, restricted to timelineWindow frames around the divergence.
func spanLatencies(bundles []*Bundle, around int64) []InputLatencyRow {
	if around < 0 {
		return nil
	}
	var out []InputLatencyRow
	for _, b := range bundles {
		for _, s := range b.Spans {
			if s.Frame < around-timelineWindow || s.Frame > around+timelineWindow {
				continue
			}
			row := InputLatencyRow{Site: b.Manifest.Site, Frame: s.Frame, Retransmits: s.Retransmits}
			if s.Executed != 0 {
				if s.RemotePressed != 0 {
					row.CrossNs = s.Executed - s.RemotePressed
				}
				if s.Pressed != 0 {
					row.LocalNs = s.Executed - s.Pressed
				}
				if s.RemoteExec != 0 {
					if row.SkewNs = s.Executed - s.RemoteExec; row.SkewNs < 0 {
						row.SkewNs = -row.SkewNs
					}
				}
			}
			if s.Recv != 0 && s.RemoteSend != 0 {
				row.NetNs = s.Recv - s.RemoteSend
			}
			out = append(out, row)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Frame != out[j].Frame {
			return out[i].Frame < out[j].Frame
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// crossBundleDivergence compares the two bundles' per-frame hash records and
// returns the first frame present in both on which they disagree.
func crossBundleDivergence(a, b *Bundle) (int64, bool) {
	other := make(map[int64]uint64, len(b.Frames))
	for _, f := range b.Frames {
		other[f.Frame] = f.Hash
	}
	first, found := int64(-1), false
	for _, f := range a.Frames {
		if h, ok := other[f.Frame]; ok && h != f.Hash {
			if !found || f.Frame < first {
				first, found = f.Frame, true
			}
		}
	}
	return first, found
}

// remoteDigestDivergence compares a bundle's own per-frame hashes against the
// peer digests it recorded.
func remoteDigestDivergence(b *Bundle) (int64, bool) {
	own := make(map[int64]uint64, len(b.Frames))
	for _, f := range b.Frames {
		own[f.Frame] = f.Hash
	}
	first, found := int64(-1), false
	for _, rh := range b.RemoteHashes {
		if h, ok := own[rh.Frame]; ok && h != rh.Hash {
			if !found || rh.Frame < first {
				first, found = rh.Frame, true
			}
		}
	}
	return first, found
}

// analyzeSite replays one bundle from its earliest reachable checkpoint and
// checks every recorded frame hash; on deviation it diffs the replayed state
// against the bundle's incident-time snapshot.
func analyzeSite(b *Bundle) SiteAnalysis {
	sa := SiteAnalysis{
		Site:           b.Manifest.Site,
		Deterministic:  true,
		DeviationFrame: -1,
		ReplayedFrom:   -2,
	}
	if len(b.Frames) == 0 {
		sa.ReplayErr = "bundle records no frames"
		return sa
	}
	if len(b.ROM) == 0 {
		sa.ReplayErr = "bundle embeds no ROM image"
		return sa
	}
	cart, err := rom.Decode(b.ROM)
	if err != nil {
		sa.ReplayErr = fmt.Sprintf("embedded ROM: %v", err)
		return sa
	}
	console, err := cart.Boot()
	if err != nil {
		sa.ReplayErr = fmt.Sprintf("booting embedded ROM: %v", err)
		return sa
	}

	// Choose the earliest replay base whose input coverage is contiguous:
	// boot when the ring still reaches the session start, else the oldest
	// retained snapshot that the ring covers. Earlier is better — it
	// maximizes the window in which a deviation can be caught.
	lo := b.Frames[0].Frame
	hi := b.Frames[len(b.Frames)-1].Frame
	base := int64(-2)
	if lo <= int64(b.Manifest.StartFrame) {
		base = int64(b.Manifest.StartFrame) - 1 // replay from boot
	} else {
		for _, s := range b.Snapshots { // oldest first
			if s.Frame+1 >= lo && s.Frame < hi {
				if err := console.Restore(s.State); err != nil {
					sa.ReplayErr = fmt.Sprintf("restoring snapshot at frame %d: %v", s.Frame, err)
					return sa
				}
				base = s.Frame
				break
			}
		}
	}
	if base == -2 {
		sa.ReplayErr = fmt.Sprintf("no checkpoint reachable from the input window [%d, %d]", lo, hi)
		return sa
	}
	sa.ReplayedFrom = base

	inputs := make(map[int64]FrameRecord, len(b.Frames))
	for _, f := range b.Frames {
		inputs[f.Frame] = f
	}
	for f := base + 1; f <= hi; f++ {
		rec, ok := inputs[f]
		if !ok {
			sa.ReplayErr = fmt.Sprintf("input record for frame %d missing", f)
			return sa
		}
		console.StepFrame(rec.Input)
		sa.ReplayedTo = f
		if console.StateHash() != rec.Hash && sa.DeviationFrame < 0 {
			sa.Deterministic = false
			sa.DeviationFrame = f
			// Keep replaying: the diff below wants the expected state at
			// the incident snapshot's frame, not at first deviation.
		}
	}

	if !sa.Deterministic && b.Final != nil && b.Final.Frame == hi {
		actual, err := cart.Boot()
		if err == nil {
			err = actual.Restore(b.Final.State)
		}
		if err != nil {
			sa.ReplayErr = fmt.Sprintf("restoring incident snapshot: %v", err)
			return sa
		}
		sa.Diff, sa.DiffTruncated = diffConsoles(console, actual)
	}
	return sa
}

// diffConsoles compares the replayed (expected) console against the recorded
// (actual) one: registers, PC, then RAM byte-by-byte via Peek.
func diffConsoles(want, got *vm.Console) (diffs []StateDiff, truncated bool) {
	for i := 0; i < vm.NumRegs; i++ {
		if w, g := want.Reg(i), got.Reg(i); w != g {
			diffs = append(diffs, StateDiff{Kind: DiffReg, Index: i, Want: uint64(w), Got: uint64(g)})
		}
	}
	if w, g := want.PC(), got.PC(); w != g {
		diffs = append(diffs, StateDiff{Kind: DiffPC, Want: uint64(w), Got: uint64(g)})
	}
	for a := 0; a < vm.MemSize; a++ {
		if w, g := want.Peek(uint16(a)), got.Peek(uint16(a)); w != g {
			if len(diffs) >= maxDiffEntries {
				return diffs, true
			}
			diffs = append(diffs, StateDiff{Kind: DiffRAM, Index: a, Want: uint64(w), Got: uint64(g)})
		}
	}
	return diffs, false
}

// traceLine mirrors the tracer's JSONL schema.
type traceLine struct {
	AtNs  int64  `json:"at_ns"`
	Kind  string `json:"kind"`
	Site  int    `json:"site"`
	Frame int64  `json:"frame"`
	Arg   int64  `json:"arg"`
}

// mergeTimelines builds the causally-aligned two-site timeline: events from
// every bundle's embedded trace within timelineWindow frames of the
// divergence (every event when the frame is unknown is out of scope — the
// timeline stays empty then), ordered by frame first so the sites align by
// game progress, not by their unsynchronized wall clocks.
func mergeTimelines(bundles []*Bundle, around int64) []TimelineEvent {
	if around < 0 {
		return nil
	}
	var out []TimelineEvent
	for _, b := range bundles {
		sc := bufio.NewScanner(bytes.NewReader(b.Trace))
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var e traceLine
			if json.Unmarshal(line, &e) != nil {
				continue // a damaged trace line is not worth failing triage
			}
			if e.Frame < around-timelineWindow || e.Frame > around+timelineWindow {
				if e.Kind != "incident" {
					continue
				}
			}
			out = append(out, TimelineEvent{Site: e.Site, Frame: e.Frame, AtNs: e.AtNs, Kind: e.Kind, Arg: e.Arg})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Frame != out[j].Frame {
			return out[i].Frame < out[j].Frame
		}
		return out[i].AtNs < out[j].AtNs
	})
	return out
}

// Format renders the report for a terminal. verbose includes the merged
// timeline.
func (r *Report) Format(w io.Writer, verbose bool) {
	if r.FirstDivergentFrame >= 0 {
		fmt.Fprintf(w, "first divergent frame: %d (%s)\n", r.FirstDivergentFrame, r.Method)
	} else {
		fmt.Fprintf(w, "first divergent frame: not found (replicas agree over the recorded window)\n")
	}
	if r.NondeterministicSite >= 0 {
		fmt.Fprintf(w, "nondeterministic site: %d (its replay deviates from its own recording)\n", r.NondeterministicSite)
	}
	for _, sa := range r.Sites {
		fmt.Fprintf(w, "\nsite %d:\n", sa.Site)
		if sa.ReplayErr != "" {
			fmt.Fprintf(w, "  replay: unavailable (%s)\n", sa.ReplayErr)
			continue
		}
		from := fmt.Sprintf("checkpoint at frame %d", sa.ReplayedFrom)
		if sa.ReplayedFrom < 0 {
			from = "boot"
		}
		fmt.Fprintf(w, "  replayed from %s through frame %d\n", from, sa.ReplayedTo)
		if sa.Deterministic {
			fmt.Fprintf(w, "  deterministic: replay reproduces every recorded hash\n")
			continue
		}
		fmt.Fprintf(w, "  DEVIATES at frame %d: the machine did not follow from its inputs\n", sa.DeviationFrame)
		if len(sa.Diff) > 0 {
			fmt.Fprintf(w, "  state diff at frame %d (expected vs recorded):\n", sa.ReplayedTo)
			for _, d := range sa.Diff {
				fmt.Fprintf(w, "    %s\n", d)
			}
			if sa.DiffTruncated {
				fmt.Fprintf(w, "    ... diff truncated at %d entries\n", maxDiffEntries)
			}
		}
	}
	if verbose && len(r.Timeline) > 0 {
		fmt.Fprintf(w, "\nmerged timeline (±%d frames around the divergence):\n", timelineWindow)
		for _, e := range r.Timeline {
			fmt.Fprintf(w, "  frame %6d  site %d  %-12s arg=%-8d at=%dns\n", e.Frame, e.Site, e.Kind, e.Arg, e.AtNs)
		}
	}
	if verbose && len(r.InputLatency) > 0 {
		fmt.Fprintf(w, "\ninput latency (±%d frames around the divergence; ms, 0 = leg never closed):\n", timelineWindow)
		fmt.Fprintf(w, "  %6s  %4s  %8s  %8s  %8s  %8s  %7s\n", "frame", "site", "cross", "local", "net", "skew", "retrans")
		ms := func(ns int64) float64 { return float64(ns) / 1e6 }
		for _, row := range r.InputLatency {
			fmt.Fprintf(w, "  %6d  %4d  %8.2f  %8.2f  %8.2f  %8.2f  %7d\n",
				row.Frame, row.Site, ms(row.CrossNs), ms(row.LocalNs), ms(row.NetNs), ms(row.SkewNs), row.Retransmits)
		}
	}
}
