package flight_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/rom/games"
	"retrolock/internal/span"
	"retrolock/internal/vm"
)

// testConfig is the session configuration the unit tests stamp into bundles.
func testConfig() core.Config {
	return core.Config{NumPlayers: 2, BufFrame: 6, CFPS: 60, HashInterval: 60}
}

// testInput derives a deterministic per-frame input word.
func testInput(f int) uint16 { return uint16(uint32(f) * 2654435761) }

// recordRun boots a fresh console, steps it for frames 0..last (poking
// pokeAddr with pokeXOR just before frame pokeFrame when pokeXOR != 0, the
// same semantics the chaos harness uses) and feeds every frame into a
// recorder built from opts.
func recordRun(t testing.TB, opts flight.Options, last, pokeFrame int, pokeAddr uint16, pokeXOR byte) (*flight.Recorder, *vm.Console) {
	t.Helper()
	game := games.MustLoad("pong")
	console, err := game.Boot()
	if err != nil {
		t.Fatal(err)
	}
	opts.Game = "pong"
	opts.ROM = game.Encode()
	opts.Config = testConfig()
	rec := flight.NewRecorder(console, opts)
	for f := 0; f <= last; f++ {
		if pokeXOR != 0 && f == pokeFrame {
			console.Poke(pokeAddr, console.Peek(pokeAddr)^pokeXOR)
		}
		console.StepFrame(testInput(f))
		rec.RecordFrame(f, testInput(f), console.StateHash(), 0)
	}
	return rec, console
}

func TestBundleRoundTrip(t *testing.T) {
	b := &flight.Bundle{
		Manifest: flight.Manifest{
			Version: flight.BundleVersion, Site: 1, Kind: "desync", KindCode: 1,
			Frame: 541, Cause: "frame 540: replicas diverged",
			Game: "pong", ROMHash: 0xDEADBEEF,
			NumPlayers: 2, BufFrame: 6, CFPS: 60, HashInterval: 60, StartFrame: 0,
		},
		ROM: []byte{1, 2, 3, 4},
		Frames: []flight.FrameRecord{
			{Frame: 539, Input: 0x1234, Wait: 3 * time.Millisecond, Hash: 7},
			{Frame: 540, Input: 0xFFFF, Wait: 0, Hash: 8},
		},
		Snapshots: []flight.StateSnapshot{
			{Frame: 300, State: []byte{9, 9}},
			{Frame: 600, State: []byte{7}},
		},
		Final:        &flight.StateSnapshot{Frame: 540, State: []byte{5}},
		RemoteHashes: []flight.RemoteHash{{Site: 0, Frame: 540, Hash: 9}},
		Trace:        []byte(`{"kind":"frame"}` + "\n"),
		Metrics:      []byte(`{"retrolock_desync_total":1}`),
		Spans: []span.Span{
			{Frame: 539, Pressed: 1, Sent: 2, Executed: 100, RemotePressed: 50, Retransmits: 1},
			{Frame: 540, Pressed: 3, Executed: 120, RemoteExec: 118},
		},
	}
	got, err := flight.Decode(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip changed the bundle:\n got %+v\nwant %+v", got, b)
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	b := &flight.Bundle{
		Manifest: flight.Manifest{Version: flight.BundleVersion, Site: 0, Kind: "manual"},
		Frames:   []flight.FrameRecord{{Frame: 1, Hash: 2}},
		ROM:      []byte{1, 2, 3},
	}
	good := b.Encode()
	if _, err := flight.Decode(good); err != nil {
		t.Fatalf("pristine bundle rejected: %v", err)
	}
	// Every truncation must fail cleanly (the CRC trailer is gone or the
	// sections are cut short), never panic.
	for n := 0; n < len(good); n++ {
		if _, err := flight.Decode(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Any flipped byte must trip the checksum.
	for i := 0; i < len(good); i += 7 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := flight.Decode(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestRecorderWindowsAndIncident(t *testing.T) {
	dir := t.TempDir()
	rec, _ := recordRun(t, flight.Options{
		Site: 1, InputWindow: 8, SnapEvery: 4, Snapshots: 2, RemoteWindow: 4, Dir: dir,
	}, 20, 0, 0, 0)
	for f := 0; f < 10; f++ {
		rec.RecordRemoteHash(0, f, uint64(f)*3)
	}
	if rec.Fired() {
		t.Fatal("recorder fired before any incident")
	}
	rec.Incident(core.IncidentDesync, fmt.Errorf("synthetic divergence"))
	if !rec.Fired() {
		t.Fatal("Incident did not fire the recorder")
	}

	b, err := flight.Decode(rec.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Kind != "desync" || b.Manifest.KindCode != int(core.IncidentDesync) {
		t.Errorf("manifest kind = %q/%d, want desync", b.Manifest.Kind, b.Manifest.KindCode)
	}
	if b.Manifest.Site != 1 || b.Manifest.Game != "pong" || b.Manifest.Frame != 21 {
		t.Errorf("manifest = %+v", b.Manifest)
	}
	if b.Manifest.Cause != "synthetic divergence" {
		t.Errorf("cause = %q", b.Manifest.Cause)
	}
	if b.Manifest.ROMHash != flight.ROMHash(b.ROM) || len(b.ROM) == 0 {
		t.Error("embedded ROM does not match its manifest hash")
	}
	// The input ring keeps the freshest 8 frames, oldest first.
	if len(b.Frames) != 8 || b.Frames[0].Frame != 13 || b.Frames[7].Frame != 20 {
		t.Fatalf("frame window = %+v", b.Frames)
	}
	for _, f := range b.Frames {
		if f.Input != testInput(int(f.Frame)) {
			t.Errorf("frame %d recorded input %#x, want %#x", f.Frame, f.Input, testInput(int(f.Frame)))
		}
	}
	// Savestates every 4 frames, last 2 retained: frames 16 and 20.
	if len(b.Snapshots) != 2 || b.Snapshots[0].Frame != 16 || b.Snapshots[1].Frame != 20 {
		t.Fatalf("snapshots = %d and frames %v", len(b.Snapshots), b.Snapshots)
	}
	if b.Final == nil || b.Final.Frame != 20 || len(b.Final.State) == 0 {
		t.Fatalf("final snapshot = %+v", b.Final)
	}
	if len(b.RemoteHashes) != 4 || b.RemoteHashes[0].Frame != 6 || b.RemoteHashes[3].Frame != 9 {
		t.Fatalf("remote window = %+v", b.RemoteHashes)
	}

	// Auto-write happened, and the bundle on disk is the bundle in memory.
	path := rec.BundlePath()
	want := filepath.Join(dir, "flight-site1-desync-f21.rkfb")
	if path != want {
		t.Fatalf("bundle path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, rec.Bundle()) {
		t.Fatal("bundle on disk differs from the in-memory one")
	}

	// The trigger is one-shot: a second incident must not replace the bundle.
	rec.Incident(core.IncidentStall, fmt.Errorf("later stall"))
	b2, err := flight.Decode(rec.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	if b2.Manifest.Kind != "desync" {
		t.Fatalf("second incident overwrote the first: kind = %q", b2.Manifest.Kind)
	}
}

func TestDumpIsNonConsuming(t *testing.T) {
	rec, _ := recordRun(t, flight.Options{Site: 0, SnapEvery: -1}, 30, 0, 0, 0)
	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := flight.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Kind != "manual" {
		t.Fatalf("manual dump kind = %q", b.Manifest.Kind)
	}
	if rec.Fired() {
		t.Fatal("Dump consumed the one-shot trigger")
	}
	// A real incident afterwards still produces its own bundle, and Dump
	// then returns the frozen incident bundle verbatim.
	rec.Incident(core.IncidentPanic, fmt.Errorf("boom"))
	buf.Reset()
	if err := rec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rec.Bundle()) {
		t.Fatal("post-incident Dump did not stream the frozen bundle")
	}
}

func TestWriteManual(t *testing.T) {
	dir := t.TempDir()
	rec, _ := recordRun(t, flight.Options{Site: 0, Dir: dir, SnapEvery: -1}, 10, 0, 0, 0)
	path, err := rec.WriteManual()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, "manual") {
		t.Fatalf("path = %q, want a manual-kind bundle", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if !rec.Fired() {
		t.Fatal("WriteManual must consume the trigger")
	}
	again, err := rec.WriteManual()
	if err != nil || again != path {
		t.Fatalf("second WriteManual = %q, %v; want the original path", again, err)
	}
}

// TestTriagePokeFromSnapshot is the analyzer's central contract on a single
// bundle: with the boot state out of the input window, triage replays from
// the oldest covered savestate, flags the exact frame the machine deviated
// from its own record, and the state diff names the poked RAM byte.
func TestTriagePokeFromSnapshot(t *testing.T) {
	const (
		pokeFrame = 200
		pokeAddr  = 0x7ABC
		pokeXOR   = 0x5A
	)
	rec, _ := recordRun(t, flight.Options{
		Site: 1, InputWindow: 128, SnapEvery: 50, Snapshots: 4,
	}, 260, pokeFrame, pokeAddr, pokeXOR)
	rec.Incident(core.IncidentDesync, fmt.Errorf("synthetic"))
	b, err := flight.Decode(rec.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flight.Analyze(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstDivergentFrame != pokeFrame {
		t.Fatalf("first divergent frame = %d (%s), want %d", rep.FirstDivergentFrame, rep.Method, pokeFrame)
	}
	if rep.NondeterministicSite != 1 {
		t.Fatalf("nondeterministic site = %d, want 1", rep.NondeterministicSite)
	}
	sa := rep.Sites[0]
	if sa.ReplayErr != "" {
		t.Fatalf("replay failed: %s", sa.ReplayErr)
	}
	// Boot (frame -1) is out of the 128-frame window; the replay must have
	// started from a retained savestate before the poke.
	if sa.ReplayedFrom < 0 || sa.ReplayedFrom >= pokeFrame {
		t.Fatalf("replayed from %d, want a checkpoint in [0, %d)", sa.ReplayedFrom, pokeFrame)
	}
	if sa.Deterministic || sa.DeviationFrame != pokeFrame {
		t.Fatalf("deviation frame = %d (deterministic=%v), want %d", sa.DeviationFrame, sa.Deterministic, pokeFrame)
	}
	found := false
	for _, d := range sa.Diff {
		if d.Kind == flight.DiffRAM && d.Index == pokeAddr {
			found = true
			if byte(d.Got) != byte(d.Want)^pokeXOR {
				t.Errorf("ram[%#x] diff want/got = %#x/%#x, expected XOR by %#x", pokeAddr, d.Want, d.Got, pokeXOR)
			}
		}
	}
	if !found {
		t.Fatalf("state diff does not name the poked byte %#x: %v", pokeAddr, sa.Diff)
	}
}

// TestTriageCleanBundle pins the negative: a healthy recording replays
// deterministically and reports no divergence.
func TestTriageCleanBundle(t *testing.T) {
	rec, _ := recordRun(t, flight.Options{Site: 0}, 200, 0, 0, 0)
	rec.Incident(core.IncidentStall, fmt.Errorf("peer silent"))
	b, err := flight.Decode(rec.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flight.Analyze(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstDivergentFrame != -1 || rep.NondeterministicSite != -1 {
		t.Fatalf("clean bundle triaged as divergent: %+v", rep)
	}
	if sa := rep.Sites[0]; !sa.Deterministic || sa.ReplayedFrom != -1 || sa.ReplayedTo != 200 {
		t.Fatalf("clean replay = %+v, want deterministic from boot through 200", sa)
	}
}

// TestTriageTwoBundles exercises the cross-bundle path: one bundle per site,
// the first divergent frame found by direct per-frame hash comparison.
func TestTriageTwoBundles(t *testing.T) {
	const (
		pokeFrame = 150
		pokeAddr  = 0x7ABC
		pokeXOR   = 0x11
	)
	recA, _ := recordRun(t, flight.Options{Site: 0}, 220, 0, 0, 0)
	recB, _ := recordRun(t, flight.Options{Site: 1}, 220, pokeFrame, pokeAddr, pokeXOR)
	recA.Incident(core.IncidentDesync, fmt.Errorf("synthetic"))
	recB.Incident(core.IncidentDesync, fmt.Errorf("synthetic"))
	bA, err := flight.Decode(recA.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	bB, err := flight.Decode(recB.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flight.Analyze(bA, bB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstDivergentFrame != pokeFrame {
		t.Fatalf("first divergent frame = %d (%s), want %d", rep.FirstDivergentFrame, rep.Method, pokeFrame)
	}
	if !strings.Contains(rep.Method, "cross-bundle") {
		t.Fatalf("method = %q, want the cross-bundle comparison", rep.Method)
	}
	if rep.NondeterministicSite != 1 {
		t.Fatalf("nondeterministic site = %d, want 1", rep.NondeterministicSite)
	}
	if sa := rep.Sites[0]; !sa.Deterministic {
		t.Fatalf("healthy site 0 flagged nondeterministic: %+v", sa)
	}
}

// TestTriageSpanLatencyRows checks that a journal attached to the recorder
// surfaces per-input latency rows around the divergence frame, in both the
// structured report and the verbose rendering.
func TestTriageSpanLatencyRows(t *testing.T) {
	const (
		pokeFrame = 200
		pokeAddr  = 0x7ABC
		pokeXOR   = 0x5A
	)
	epoch := time.Unix(0, 0)
	j := span.NewJournal(epoch, 512)
	at := func(f int64, off time.Duration) time.Time {
		return epoch.Add(time.Duration(f)*16670*time.Microsecond + off)
	}
	for f := int64(190); f <= 260; f++ {
		j.StampPressed(f, at(f-6, 0)) // frame f's input pressed one lag (6 frames) early
		j.StampRecv(f, at(f, -2*time.Millisecond), 0)
		j.StampRemoteExec(f-6, at(f-6, 0).Sub(epoch).Nanoseconds(), 6)
		j.StampExecuted(f, at(f, 0))
	}
	rec, _ := recordRun(t, flight.Options{
		Site: 1, InputWindow: 128, SnapEvery: 50, Snapshots: 4, Journal: j,
	}, 260, pokeFrame, pokeAddr, pokeXOR)
	rec.Incident(core.IncidentDesync, fmt.Errorf("synthetic"))
	b, err := flight.Decode(rec.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Spans) == 0 {
		t.Fatal("bundle carries no spans despite an attached journal")
	}
	rep, err := flight.Analyze(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstDivergentFrame != pokeFrame {
		t.Fatalf("first divergent frame = %d, want %d", rep.FirstDivergentFrame, pokeFrame)
	}
	var atPoke *flight.InputLatencyRow
	for i := range rep.InputLatency {
		row := &rep.InputLatency[i]
		if row.Frame < pokeFrame-30 || row.Frame > pokeFrame+30 {
			t.Fatalf("latency row for frame %d outside the ±30 window", row.Frame)
		}
		if row.Frame == pokeFrame {
			atPoke = row
		}
	}
	if atPoke == nil {
		t.Fatal("no latency row at the divergence frame")
	}
	wantLag := int64(6 * 16670 * time.Microsecond)
	if atPoke.LocalNs != wantLag {
		t.Errorf("local latency at divergence = %d, want the %d lag", atPoke.LocalNs, wantLag)
	}
	if atPoke.CrossNs != wantLag {
		t.Errorf("cross latency at divergence = %d, want %d", atPoke.CrossNs, wantLag)
	}
	var out bytes.Buffer
	rep.Format(&out, true)
	if !strings.Contains(out.String(), "input latency") {
		t.Fatalf("verbose report lacks the input-latency table:\n%s", out.String())
	}
}

// TestDeltaRingMaterializesFullImages proves the base+delta snapshot ring is
// invisible in the bundle: every StateSnapshot is byte-identical to the full
// savestate the console would have produced at that frame, even after the
// ring rotates through several base/delta cycles.
func TestDeltaRingMaterializesFullImages(t *testing.T) {
	game := games.MustLoad("pong")
	console, err := game.Boot()
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder(console, flight.Options{
		Game: "pong", ROM: game.Encode(), Config: testConfig(),
		SnapEvery: 3, Snapshots: 4, SnapBaseEvery: 5,
	})
	want := map[int64][]byte{}
	for f := 0; f <= 200; f++ {
		console.StepFrame(testInput(f))
		rec.RecordFrame(f, testInput(f), console.StateHash(), 0)
		if f%3 == 0 {
			want[int64(f)] = console.Save()
		}
	}
	rec.Incident(core.IncidentManual, nil)
	b, err := flight.Decode(rec.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snapshots) != 4 {
		t.Fatalf("bundle has %d snapshots, want 4", len(b.Snapshots))
	}
	for _, s := range b.Snapshots {
		full, ok := want[s.Frame]
		if !ok {
			t.Fatalf("snapshot at unexpected frame %d", s.Frame)
		}
		if !bytes.Equal(s.State, full) {
			t.Errorf("frame %d: materialized snapshot differs from the full savestate", s.Frame)
		}
	}
}

// saveOnlyMachine supports savestates but not dirty-page deltas: the
// recorder must fall back to one full image per slot.
type saveOnlyMachine struct{ state byte }

func (m *saveOnlyMachine) StepFrame(input uint16) { m.state += byte(input) + 1 }
func (m *saveOnlyMachine) StateHash() uint64      { return uint64(m.state) }
func (m *saveOnlyMachine) Save() []byte           { return []byte{m.state} }
func (m *saveOnlyMachine) Restore(d []byte) error { m.state = d[0]; return nil }

func TestSnapshotFallbackWithoutDeltaSupport(t *testing.T) {
	m := &saveOnlyMachine{}
	rec := flight.NewRecorder(m, flight.Options{Config: testConfig(), SnapEvery: 1, Snapshots: 3})
	for f := 0; f < 10; f++ {
		m.StepFrame(0)
		rec.RecordFrame(f, 0, m.StateHash(), 0)
	}
	rec.Incident(core.IncidentManual, nil)
	b, err := flight.Decode(rec.Bundle())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snapshots) != 3 {
		t.Fatalf("bundle has %d snapshots, want 3", len(b.Snapshots))
	}
	for i, s := range b.Snapshots {
		if wantState := byte(s.Frame) + 1; len(s.State) != 1 || s.State[0] != wantState {
			t.Errorf("snapshot %d: state %v, want [%d]", i, s.State, wantState)
		}
	}
}
