package flight_test

import (
	"testing"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/obs"
	"retrolock/internal/rom/games"
)

// TestRecorderSteadyStateZeroAlloc pins the recorder's own hot path: a ring
// write per frame plus a buffer-reusing savestate capture (SnapEvery = 1
// makes every frame snapshot, the worst case) must not allocate once the
// slot buffers reach size.
func TestRecorderSteadyStateZeroAlloc(t *testing.T) {
	game := games.MustLoad("pong")
	console, err := game.Boot()
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder(console, flight.Options{
		Site: 0, Game: "pong", ROM: game.Encode(), SnapEvery: 1, Snapshots: 4,
	})
	f := 0
	step := func() {
		console.StepFrame(uint16(f))
		rec.RecordFrame(f, uint16(f), console.StateHash(), 0)
		rec.RecordRemoteHash(1, f, uint64(f))
		f++
	}
	for f < 50 { // warm-up: every snapshot slot captured at least once
		step()
	}
	allocs := testing.AllocsPerRun(500, step)
	if allocs != 0 {
		t.Fatalf("steady-state recording allocates %.1f times per frame, want 0", allocs)
	}
}

// --- full frame loop with the black box attached ---------------------------

// stepClock is a hand-cranked clock: no scheduler, no goroutines, no
// allocation.
type stepClock struct{ t time.Time }

func (c *stepClock) Now() time.Time { return c.t }
func (c *stepClock) Sleep(d time.Duration) {
	if d > 0 {
		c.t = c.t.Add(d)
	}
}

// testPipe is a lossless in-memory conn over preallocated slots, so the
// transport contributes zero allocations.
type testPipe struct {
	peer        *testPipe
	slots       [][]byte
	head, count int
}

func newTestPipePair() (*testPipe, *testPipe) {
	mk := func() *testPipe {
		c := &testPipe{slots: make([][]byte, 64)}
		for i := range c.slots {
			c.slots[i] = make([]byte, 0, 4096)
		}
		return c
	}
	a, b := mk(), mk()
	a.peer, b.peer = b, a
	return a, b
}

func (c *testPipe) Send(p []byte) error {
	q := c.peer
	if q.count == len(q.slots) {
		return nil // full: drop, like UDP
	}
	i := (q.head + q.count) % len(q.slots)
	q.slots[i] = append(q.slots[i][:0], p...)
	q.count++
	return nil
}

func (c *testPipe) TryRecv() ([]byte, bool) {
	if c.count == 0 {
		return nil, false
	}
	p := c.slots[c.head]
	c.head = (c.head + 1) % len(c.slots)
	c.count--
	return p, true
}

func (c *testPipe) Close() error       { return nil }
func (c *testPipe) LocalAddr() string  { return "test" }
func (c *testPipe) RemoteAddr() string { return "test" }

// TestFrameLoopZeroAllocWithFlight is the tentpole's allocation gate: the
// full Algorithm 1 loop over real consoles with observability AND the flight
// recorder attached — per-frame ring write, LastWait sampling, the stall
// check, the panic guard, and a savestate capture on every single frame —
// must stay at zero allocations in steady state. The black box rides the hot
// path for free or it cannot be always-on.
func TestFrameLoopZeroAllocWithFlight(t *testing.T) {
	epoch := time.Unix(0, 0)
	clk := &stepClock{t: epoch}
	c0, c1 := newTestPipePair()
	conns := [2]*testPipe{c0, c1}
	game := games.MustLoad("pong")
	image := game.Encode()
	reg := obs.NewRegistry()
	var sessions [2]*core.Session
	var recorders [2]*flight.Recorder
	for site := 0; site < 2; site++ {
		console, err := game.Boot()
		if err != nil {
			t.Fatal(err)
		}
		// Hash exchange off: the digest broadcast legitimately allocates its
		// message, and the recorder's RecordFrame runs regardless.
		s, err := core.NewSession(core.Config{SiteNo: site, HashInterval: -1}, clk, epoch,
			console, []core.Peer{{Site: 1 - site, Conn: conns[site]}})
		if err != nil {
			t.Fatal(err)
		}
		s.SetObs(core.NewSessionObs(reg, site, 1<<12, epoch))
		rec := flight.NewRecorder(console, flight.Options{
			Site: site, Game: "pong", ROM: image, Config: s.Sync().Config(),
			SnapEvery: 1, Snapshots: 4, StallThreshold: time.Minute,
		})
		s.SetFlightRecorder(rec)
		sessions[site] = s
		recorders[site] = rec
	}

	inputs := [2]func(int) uint16{
		func(f int) uint16 { return uint16(f) & 0x00FF },
		func(f int) uint16 { return uint16(f) & 0x00FF << 8 },
	}
	step := func() {
		for site, s := range sessions {
			if err := s.RunFrames(1, inputs[site], nil); err != nil {
				t.Fatalf("site %d frame %d: %v", site, s.Frame(), err)
			}
		}
		clk.Sleep(core.DefaultSendInterval)
	}
	for f := 0; f < 300; f++ { // warm-up: scratch buffers reach steady size
		step()
	}
	allocs := testing.AllocsPerRun(500, func() { step() })
	if allocs != 0 {
		t.Fatalf("frame loop with flight recorder allocates %.1f times per frame, want 0", allocs)
	}
	// The recorders must actually have been live, or the gate proves nothing.
	for site, rec := range recorders {
		if rec.Fired() {
			t.Errorf("site %d: recorder fired during a healthy run", site)
		}
		var sink countWriter
		if err := rec.Dump(&sink); err != nil {
			t.Fatalf("site %d dump: %v", site, err)
		}
		if sink.n == 0 {
			t.Errorf("site %d: black box dumped nothing", site)
		}
	}
}

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
