package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/obs"
	"retrolock/internal/span"
	"retrolock/internal/vm"
)

// Defaults for Options zero values.
const (
	// DefaultInputWindow is how many recent frames (input + hash) the ring
	// retains: ~17 s at 60 FPS, comfortably spanning a DefaultHashInterval
	// detection delay plus several snapshot periods.
	DefaultInputWindow = 1024
	// DefaultSnapEvery is the frame interval between periodic savestates
	// (5 s at 60 FPS).
	DefaultSnapEvery = 300
	// DefaultSnapshots is how many periodic savestates are retained.
	DefaultSnapshots = 4
	// DefaultRemoteWindow is how many peer digests are retained.
	DefaultRemoteWindow = 64
	// DefaultSnapBaseEvery is the capture interval between full base images
	// in the delta snapshot ring: one full image, then SnapBaseEvery-1
	// dirty-page deltas, then the next full image.
	DefaultSnapBaseEvery = 8
)

// appendSaver is the allocation-free savestate surface (vm.Console provides
// it); machines lacking it fall back to Snapshotter.Save, which allocates —
// acceptable for test fakes, not for the production console.
type appendSaver interface {
	AppendSave([]byte) []byte
}

// deltaSaver is the dirty-page incremental savestate surface (vm.Console
// provides it). A base capture is a full image; a delta capture carries only
// the pages mutated since the previous capture in the chain, in the vm's
// RKSD format (materialized back into full images via vm.ApplyDeltaToImage).
// Machines lacking it fall back to a full savestate per slot.
type deltaSaver interface {
	AppendSaveBase([]byte) []byte
	AppendSaveDelta([]byte) []byte
}

// Options configures a Recorder. The zero value is usable: bounded rings at
// the defaults above, no auto-write directory, no stall trigger.
type Options struct {
	// Site is this site's number (manifest + dump naming).
	Site int
	// Game names the ROM and ROM is its encoded image, embedded in the
	// bundle so triage replays without the original file.
	Game string
	ROM  []byte
	// Config is the session configuration, recorded in the manifest.
	Config core.Config

	// InputWindow, SnapEvery, Snapshots, RemoteWindow bound the rings
	// (zero: the defaults above). SnapEvery < 0 disables periodic
	// savestates.
	InputWindow  int
	SnapEvery    int
	Snapshots    int
	RemoteWindow int

	// SnapBaseEvery is the capture interval between full base images when
	// the machine supports dirty-page delta savestates (zero: the default
	// above; negative: disable deltas, store a full image per slot). The
	// ring is over-provisioned by SnapBaseEvery slots so the newest
	// Snapshots captures always have their base in the ring.
	SnapBaseEvery int

	// StallThreshold is the SyncInput wait past which the session declares
	// a liveness-stall incident (0 disables the trigger).
	StallThreshold time.Duration

	// Dir, when non-empty, is where Incident auto-writes the bundle as
	// flight-site<N>-<kind>-f<frame>.rkfb.
	Dir string

	// Registry, when non-nil, contributes a metrics snapshot to bundles.
	Registry *obs.Registry
	// Tracer, when non-nil, contributes its event ring as JSONL.
	Tracer *obs.Tracer
	// Journal, when non-nil, contributes the input-journey span window, so
	// triage can reconstruct per-input latency around the incident.
	Journal *span.Journal
}

func (o Options) withDefaults() Options {
	if o.InputWindow <= 0 {
		o.InputWindow = DefaultInputWindow
	}
	if o.SnapEvery == 0 {
		o.SnapEvery = DefaultSnapEvery
	}
	if o.Snapshots <= 0 {
		o.Snapshots = DefaultSnapshots
	}
	if o.RemoteWindow <= 0 {
		o.RemoteWindow = DefaultRemoteWindow
	}
	if o.SnapBaseEvery == 0 {
		o.SnapBaseEvery = DefaultSnapBaseEvery
	}
	return o
}

// snapSlot is one reusable savestate buffer. Slots are pre-sized so that
// after warm-up the buffer never grows again and steady-state snapshotting
// does not allocate. In the delta ring a slot holds either a full base image
// or a dirty-page delta, depending on where its capture fell in the chain.
type snapSlot struct {
	frame   int64
	isDelta bool
	buf     []byte
}

// Recorder is the black box: bounded rings fed by the frame loop, flushed
// into a Bundle on the first incident. It implements core.FlightRecorder.
//
// All methods are mutex-guarded: the frame loop writes, while an HTTP dump
// or a SIGQUIT handler may read concurrently. The steady-state paths
// (RecordFrame, RecordRemoteHash) never allocate.
type Recorder struct {
	opts     Options
	machine  core.Machine
	saver    core.Snapshotter // nil when the machine has no savestates
	appender appendSaver      // nil when Save must be used instead
	deltas   deltaSaver       // nil when every slot stores a full image

	mu      sync.Mutex
	frames  []FrameRecord
	nFrames uint64
	snaps   []snapSlot
	nSnaps  uint64
	remote  []RemoteHash
	nRemote uint64

	fired  bool
	bundle []byte // encoded incident bundle, once fired
	path   string // where the bundle was written ("" if not)
	dumpMu sync.Mutex
	werr   error
}

// NewRecorder attaches a black box to machine. Hand the result to
// (*core.Session).SetFlightRecorder. machine should be (or wrap) the same
// instance the session steps; it is only touched at incident time and during
// periodic snapshot capture.
func NewRecorder(machine core.Machine, opts Options) *Recorder {
	opts = opts.withDefaults()
	r := &Recorder{
		opts:    opts,
		machine: machine,
		frames:  make([]FrameRecord, opts.InputWindow),
		remote:  make([]RemoteHash, opts.RemoteWindow),
	}
	if s, ok := machine.(core.Snapshotter); ok {
		r.saver = s
	}
	if a, ok := machine.(appendSaver); ok {
		r.appender = a
	}
	if d, ok := machine.(deltaSaver); ok && opts.SnapBaseEvery > 0 {
		r.deltas = d
	}
	if r.saver != nil && opts.SnapEvery > 0 {
		// Pre-size every slot from a probe savestate so steady-state
		// captures reuse full-capacity buffers and never allocate. A delta
		// can exceed a full image by its per-page framing (a worst-case
		// every-page delta carries a page index per page), so give delta
		// ring slots headroom beyond the full-image size.
		capHint := len(r.save(nil))
		n := opts.Snapshots
		if r.deltas != nil {
			n += opts.SnapBaseEvery
			capHint += 1024
		}
		r.snaps = make([]snapSlot, n)
		for i := range r.snaps {
			r.snaps[i] = snapSlot{frame: -1, buf: make([]byte, 0, capHint)}
		}
	}
	return r
}

// save serializes the machine state into buf (allocation-free when the
// machine supports AppendSave and buf has capacity).
func (r *Recorder) save(buf []byte) []byte {
	if r.appender != nil {
		return r.appender.AppendSave(buf)
	}
	return append(buf, r.saver.Save()...)
}

// StallThreshold implements core.FlightRecorder.
func (r *Recorder) StallThreshold() time.Duration { return r.opts.StallThreshold }

// RecordFrame implements core.FlightRecorder: one ring write per frame, plus
// a buffer-reusing savestate capture every SnapEvery frames.
func (r *Recorder) RecordFrame(frame int, input uint16, hash uint64, syncWait time.Duration) {
	r.mu.Lock()
	r.frames[r.nFrames%uint64(len(r.frames))] = FrameRecord{
		Frame: int64(frame),
		Input: input,
		Wait:  syncWait,
		Hash:  hash,
	}
	r.nFrames++
	if r.snaps != nil && frame%r.opts.SnapEvery == 0 {
		slot := &r.snaps[r.nSnaps%uint64(len(r.snaps))]
		slot.frame = int64(frame)
		switch {
		case r.deltas == nil:
			slot.isDelta = false
			slot.buf = r.save(slot.buf[:0])
		case r.nSnaps%uint64(r.opts.SnapBaseEvery) == 0:
			slot.isDelta = false
			slot.buf = r.deltas.AppendSaveBase(slot.buf[:0])
		default:
			slot.isDelta = true
			slot.buf = r.deltas.AppendSaveDelta(slot.buf[:0])
		}
		r.nSnaps++
	}
	r.mu.Unlock()
}

// RecordRemoteHash implements core.FlightRecorder.
func (r *Recorder) RecordRemoteHash(site, frame int, hash uint64) {
	r.mu.Lock()
	r.remote[r.nRemote%uint64(len(r.remote))] = RemoteHash{Site: site, Frame: int64(frame), Hash: hash}
	r.nRemote++
	r.mu.Unlock()
}

// Incident implements core.FlightRecorder: the first call freezes the rings,
// captures the machine's final state, encodes the bundle and — when
// Options.Dir is set — writes it to disk. Later calls are no-ops.
func (r *Recorder) Incident(kind core.IncidentKind, cause error) {
	r.mu.Lock()
	if r.fired {
		r.mu.Unlock()
		return
	}
	r.fired = true
	b := r.buildLocked(kind, cause)
	r.bundle = b.Encode()
	frame := b.Manifest.Frame
	r.mu.Unlock()

	if r.opts.Dir != "" {
		name := fmt.Sprintf("flight-site%d-%s-f%d.rkfb", r.opts.Site, kind, frame)
		path := filepath.Join(r.opts.Dir, name)
		err := os.MkdirAll(r.opts.Dir, 0o755)
		if err == nil {
			err = os.WriteFile(path, r.Bundle(), 0o644)
		}
		r.mu.Lock()
		if err != nil {
			r.werr = err
		} else {
			r.path = path
		}
		r.mu.Unlock()
	}
}

// buildLocked assembles the bundle from the live rings. Caller holds r.mu.
func (r *Recorder) buildLocked(kind core.IncidentKind, cause error) *Bundle {
	b := &Bundle{
		Manifest: Manifest{
			Version:      BundleVersion,
			Site:         r.opts.Site,
			Kind:         kind.String(),
			KindCode:     int(kind),
			Game:         r.opts.Game,
			ROMHash:      ROMHash(r.opts.ROM),
			NumPlayers:   r.opts.Config.NumPlayers,
			BufFrame:     r.opts.Config.BufFrame,
			CFPS:         r.opts.Config.CFPS,
			HashInterval: r.opts.Config.HashInterval,
			StartFrame:   r.opts.Config.StartFrame,
		},
		ROM: append([]byte(nil), r.opts.ROM...),
	}
	if cause != nil {
		b.Manifest.Cause = cause.Error()
	}

	// Ring contents, oldest first.
	n := r.nFrames
	if c := uint64(len(r.frames)); n > c {
		n = c
	}
	b.Frames = make([]FrameRecord, 0, n)
	for i := r.nFrames - n; i < r.nFrames; i++ {
		b.Frames = append(b.Frames, r.frames[i%uint64(len(r.frames))])
	}
	if len(b.Frames) > 0 {
		b.Manifest.Frame = b.Frames[len(b.Frames)-1].Frame + 1
	} else {
		b.Manifest.Frame = int64(r.opts.Config.StartFrame)
	}

	if r.snaps != nil {
		ns := r.nSnaps
		if c := uint64(len(r.snaps)); ns > c {
			ns = c
		}
		// Emit the newest Snapshots captures as full images. In the delta
		// ring, replay the retained chain oldest-first: a base replaces the
		// working image, a delta patches it in place. The ring is
		// over-provisioned by SnapBaseEvery slots, so the base governing the
		// oldest emitted capture is always still retained. Bundles therefore
		// always hold full savestates — the RKFB format and its triage
		// consumers are unaffected by how the ring stores them.
		emit := ns
		if r.deltas != nil && emit > uint64(r.opts.Snapshots) {
			emit = uint64(r.opts.Snapshots)
		}
		var image []byte
		haveBase := false
		for i := r.nSnaps - ns; i < r.nSnaps; i++ {
			s := r.snaps[i%uint64(len(r.snaps))]
			if s.isDelta {
				if !haveBase {
					continue // chain head rotated out from under a partial window
				}
				if err := vm.ApplyDeltaToImage(image, s.buf); err != nil {
					haveBase = false
					continue
				}
			} else {
				image = append(image[:0], s.buf...)
				haveBase = true
			}
			if i >= r.nSnaps-emit {
				b.Snapshots = append(b.Snapshots, StateSnapshot{
					Frame: s.frame,
					State: append([]byte(nil), image...),
				})
			}
		}
	}
	if r.saver != nil && len(b.Frames) > 0 {
		// The incident-time state: what the machine actually held after its
		// last executed frame. Triage diffs this against a clean replay to
		// localize the corruption (e.g. the poked RAM byte).
		b.Final = &StateSnapshot{
			Frame: b.Frames[len(b.Frames)-1].Frame,
			State: r.save(nil),
		}
	}

	nr := r.nRemote
	if c := uint64(len(r.remote)); nr > c {
		nr = c
	}
	b.RemoteHashes = make([]RemoteHash, 0, nr)
	for i := r.nRemote - nr; i < r.nRemote; i++ {
		b.RemoteHashes = append(b.RemoteHashes, r.remote[i%uint64(len(r.remote))])
	}

	if r.opts.Tracer != nil {
		var buf bytes.Buffer
		_ = r.opts.Tracer.WriteJSONL(&buf)
		b.Trace = buf.Bytes()
	}
	if r.opts.Registry != nil {
		if m, err := json.Marshal(r.opts.Registry.Snapshot()); err == nil {
			b.Metrics = m
		}
	}
	if r.opts.Journal != nil {
		b.Spans = r.opts.Journal.Spans()
	}
	return b
}

// Fired reports whether an incident has been captured.
func (r *Recorder) Fired() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired
}

// Bundle returns the encoded incident bundle (nil before any incident).
func (r *Recorder) Bundle() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bundle
}

// BundlePath returns where Incident wrote the bundle ("" when it did not).
func (r *Recorder) BundlePath() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.path
}

// WriteErr reports a failed auto-write (nil when none was attempted or it
// succeeded).
func (r *Recorder) WriteErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.werr
}

// Dump streams a bundle to w: the frozen incident bundle when one fired, or
// a fresh manual-kind capture of the current rings otherwise. A manual dump
// does not consume the one-shot trigger, so /debug/flight/dump may be polled
// without disarming the black box. Registered on the obs HTTP surface via
// Registry.AddDump.
func (r *Recorder) Dump(w io.Writer) error {
	// dumpMu serializes concurrent manual dumps without holding r.mu
	// across the (potentially slow) network write.
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	r.mu.Lock()
	data := r.bundle
	if data == nil {
		data = r.buildLocked(core.IncidentManual, nil).Encode()
	}
	r.mu.Unlock()
	_, err := w.Write(data)
	return err
}

// WriteManual forces a manual-kind incident (the SIGQUIT path): unlike Dump
// it consumes the trigger and auto-writes to Options.Dir, returning the
// path. Returns the existing path when an incident already fired.
func (r *Recorder) WriteManual() (string, error) {
	r.Incident(core.IncidentManual, nil)
	if err := r.WriteErr(); err != nil {
		return "", err
	}
	return r.BundlePath(), nil
}
