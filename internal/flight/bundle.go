// Package flight is the black-box flight recorder and desync triage layer:
// an always-on, bounded, allocation-conscious recorder attached to every
// core.Session (a ring of recent merged inputs and per-frame state hashes,
// periodic savestates, the peer's hash digests, the live trace ring and a
// metrics snapshot) that, on an incident — replica divergence, liveness
// stall, frame-loop panic, or an operator request — writes one self-contained
// versioned bundle; plus the offline analysis (Analyze) that deterministically
// replays a bundle from its nearest checkpoint to bisect the exact first
// divergent frame and diff the expected machine state against what the
// session actually held.
//
// The paper's determinism argument (§2, §5) says divergence cannot happen;
// the flight recorder is the instrument for when it does anyway. A desync at
// production scale must be diagnosable from a single artifact, not
// reproducible by luck.
package flight

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"retrolock/internal/span"
)

// Bundle container format (little endian):
//
//	magic    "RKFB" (4)
//	version  u16
//	sections until the CRC trailer, each:
//	    tag u8, length u32, payload
//	crc      u32 — FNV-1a/32 of every preceding byte
//
// Unknown tags are skipped on decode, so newer recorders stay readable by
// older triage builds. Decode never panics on corrupt input; every length is
// bounds-checked before use (FuzzDecodeBundle enforces this).
const (
	bundleMagic   = "RKFB"
	BundleVersion = 1
)

// Section tags.
const (
	secManifest = 1 + iota
	secROM
	secFrames
	secSnapshots
	secFinal
	secRemote
	secTrace
	secMetrics
	secSpans // input-journey span export (span.AppendSpans blob); added in PR 5
)

// frameRecSize is the encoded size of one FrameRecord: frame u64, input u16,
// wait u64, hash u64.
const frameRecSize = 8 + 2 + 8 + 8

// remoteRecSize is the encoded size of one RemoteHash: site u32, frame u64,
// hash u64.
const remoteRecSize = 4 + 8 + 8

// FrameRecord is one executed frame as the recorder saw it.
type FrameRecord struct {
	// Frame is the executed frame number.
	Frame int64
	// Input is the merged input word fed to the machine.
	Input uint16
	// Wait is how long SyncInput blocked for this frame (0: it did not).
	Wait time.Duration
	// Hash is the machine state hash after the transition — per-frame, so
	// two bundles bisect the first divergent frame by direct comparison.
	Hash uint64
}

// StateSnapshot is a machine savestate captured after executing Frame.
type StateSnapshot struct {
	Frame int64
	State []byte
}

// RemoteHash is one peer state digest as it arrived on the wire.
type RemoteHash struct {
	Site  int
	Frame int64
	Hash  uint64
}

// Manifest identifies the incident and the session it happened in.
type Manifest struct {
	Version int    `json:"version"`
	Site    int    `json:"site"`
	Kind    string `json:"kind"`
	// KindCode is the core.IncidentKind numeric value.
	KindCode int `json:"kind_code"`
	// Frame is the next frame to execute at incident time.
	Frame int64  `json:"frame"`
	Cause string `json:"cause,omitempty"`
	// Game names the ROM; ROMHash is FNV-1a/64 of the embedded image.
	Game    string `json:"game,omitempty"`
	ROMHash uint64 `json:"rom_hash,omitempty"`
	// Session configuration needed to interpret the record.
	NumPlayers   int `json:"num_players"`
	BufFrame     int `json:"buf_frame"`
	CFPS         int `json:"cfps"`
	HashInterval int `json:"hash_interval"`
	StartFrame   int `json:"start_frame"`
}

// Bundle is one decoded incident bundle — everything triage needs in one
// self-contained file.
type Bundle struct {
	Manifest Manifest
	// ROM is the encoded "RK32" cartridge image the session ran, embedded
	// so a bundle replays without access to the original ROM file.
	ROM []byte
	// Frames is the recorder's input/hash window, oldest first.
	Frames []FrameRecord
	// Snapshots are the periodic savestates, oldest first.
	Snapshots []StateSnapshot
	// Final is the machine state captured at incident time (nil when the
	// machine supports no savestates).
	Final *StateSnapshot
	// RemoteHashes is the window of peer digests, oldest first.
	RemoteHashes []RemoteHash
	// Trace is the obs tracer ring as JSONL (one event per line).
	Trace []byte
	// Metrics is the registry snapshot at incident time, as JSON.
	Metrics []byte
	// Spans is the input-journey journal window at incident time, oldest
	// first — per-frame press/send/receive/execute instants, so triage can
	// show what input latency looked like around the divergence. Bundles
	// written before PR 5 (and readers older than it) simply omit the
	// section.
	Spans []span.Span
}

func appendSection(buf []byte, tag byte, payload []byte) []byte {
	buf = append(buf, tag)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// Encode serializes the bundle.
func (b *Bundle) Encode() []byte {
	manifest, err := json.Marshal(b.Manifest)
	if err != nil {
		manifest = []byte("{}") // a Manifest of plain fields cannot fail
	}
	size := 16 + len(manifest) + len(b.ROM) + len(b.Trace) + len(b.Metrics) +
		len(b.Frames)*frameRecSize + len(b.RemoteHashes)*remoteRecSize +
		len(b.Spans)*span.RecordSize + 16
	for _, s := range b.Snapshots {
		size += 12 + len(s.State)
	}
	if b.Final != nil {
		size += 12 + len(b.Final.State)
	}
	buf := make([]byte, 0, size+64)
	buf = append(buf, bundleMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, BundleVersion)
	buf = appendSection(buf, secManifest, manifest)
	if len(b.ROM) > 0 {
		buf = appendSection(buf, secROM, b.ROM)
	}
	if len(b.Frames) > 0 {
		p := make([]byte, 0, 4+len(b.Frames)*frameRecSize)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(b.Frames)))
		for _, f := range b.Frames {
			p = binary.LittleEndian.AppendUint64(p, uint64(f.Frame))
			p = binary.LittleEndian.AppendUint16(p, f.Input)
			p = binary.LittleEndian.AppendUint64(p, uint64(f.Wait))
			p = binary.LittleEndian.AppendUint64(p, f.Hash)
		}
		buf = appendSection(buf, secFrames, p)
	}
	if len(b.Snapshots) > 0 {
		var p []byte
		p = binary.LittleEndian.AppendUint32(p, uint32(len(b.Snapshots)))
		for _, s := range b.Snapshots {
			p = appendSnapshot(p, s)
		}
		buf = appendSection(buf, secSnapshots, p)
	}
	if b.Final != nil {
		buf = appendSection(buf, secFinal, appendSnapshot(nil, *b.Final))
	}
	if len(b.RemoteHashes) > 0 {
		p := make([]byte, 0, 4+len(b.RemoteHashes)*remoteRecSize)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(b.RemoteHashes)))
		for _, r := range b.RemoteHashes {
			p = binary.LittleEndian.AppendUint32(p, uint32(int32(r.Site)))
			p = binary.LittleEndian.AppendUint64(p, uint64(r.Frame))
			p = binary.LittleEndian.AppendUint64(p, r.Hash)
		}
		buf = appendSection(buf, secRemote, p)
	}
	if len(b.Trace) > 0 {
		buf = appendSection(buf, secTrace, b.Trace)
	}
	if len(b.Metrics) > 0 {
		buf = appendSection(buf, secMetrics, b.Metrics)
	}
	if len(b.Spans) > 0 {
		buf = appendSection(buf, secSpans, span.AppendSpans(nil, b.Spans))
	}
	h := fnv.New32a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint32(buf, h.Sum32())
}

func appendSnapshot(p []byte, s StateSnapshot) []byte {
	p = binary.LittleEndian.AppendUint64(p, uint64(s.Frame))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(s.State)))
	return append(p, s.State...)
}

func decodeSnapshot(p []byte) (StateSnapshot, []byte, error) {
	if len(p) < 12 {
		return StateSnapshot{}, nil, fmt.Errorf("flight: truncated snapshot header")
	}
	s := StateSnapshot{Frame: int64(binary.LittleEndian.Uint64(p))}
	n := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	if n < 0 || n > len(p) {
		return StateSnapshot{}, nil, fmt.Errorf("flight: snapshot declares %d bytes, %d available", n, len(p))
	}
	s.State = append([]byte(nil), p[:n]...)
	return s, p[n:], nil
}

// Decode parses a serialized bundle. It is total: corrupt or truncated input
// yields an error, never a panic, so triage survives damaged black boxes.
func Decode(data []byte) (*Bundle, error) {
	if len(data) < 6+4 {
		return nil, fmt.Errorf("flight: bundle of %d bytes too short", len(data))
	}
	if string(data[:4]) != bundleMagic {
		return nil, fmt.Errorf("flight: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != BundleVersion {
		return nil, fmt.Errorf("flight: unsupported bundle version %d", v)
	}
	body, crc := data[:len(data)-4], data[len(data)-4:]
	h := fnv.New32a()
	h.Write(body)
	if h.Sum32() != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("flight: checksum mismatch (bundle corrupt)")
	}
	b := &Bundle{}
	sawManifest := false
	off := 6
	for off < len(body) {
		if off+5 > len(body) {
			return nil, fmt.Errorf("flight: truncated section header at %d", off)
		}
		tag := body[off]
		n := int(binary.LittleEndian.Uint32(body[off+1:]))
		off += 5
		if n < 0 || off+n > len(body) {
			return nil, fmt.Errorf("flight: section %d declares %d bytes, %d available", tag, n, len(body)-off)
		}
		p := body[off : off+n]
		off += n
		switch tag {
		case secManifest:
			if err := json.Unmarshal(p, &b.Manifest); err != nil {
				return nil, fmt.Errorf("flight: manifest: %w", err)
			}
			sawManifest = true
		case secROM:
			b.ROM = append([]byte(nil), p...)
		case secFrames:
			recs, err := decodeFrames(p)
			if err != nil {
				return nil, err
			}
			b.Frames = recs
		case secSnapshots:
			snaps, err := decodeSnapshots(p)
			if err != nil {
				return nil, err
			}
			b.Snapshots = snaps
		case secFinal:
			s, rest, err := decodeSnapshot(p)
			if err != nil {
				return nil, err
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("flight: %d trailing bytes after final snapshot", len(rest))
			}
			b.Final = &s
		case secRemote:
			recs, err := decodeRemote(p)
			if err != nil {
				return nil, err
			}
			b.RemoteHashes = recs
		case secTrace:
			b.Trace = append([]byte(nil), p...)
		case secMetrics:
			b.Metrics = append([]byte(nil), p...)
		case secSpans:
			spans, err := span.DecodeSpans(p)
			if err != nil {
				return nil, fmt.Errorf("flight: spans: %w", err)
			}
			b.Spans = spans
		default:
			// Unknown section from a newer recorder: skip.
		}
	}
	if !sawManifest {
		return nil, fmt.Errorf("flight: bundle has no manifest")
	}
	return b, nil
}

func decodeFrames(p []byte) ([]FrameRecord, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("flight: truncated frame section")
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if n < 0 || n > len(p)/frameRecSize {
		return nil, fmt.Errorf("flight: frame section declares %d records, %d bytes available", n, len(p))
	}
	out := make([]FrameRecord, n)
	for i := range out {
		out[i] = FrameRecord{
			Frame: int64(binary.LittleEndian.Uint64(p)),
			Input: binary.LittleEndian.Uint16(p[8:]),
			Wait:  time.Duration(binary.LittleEndian.Uint64(p[10:])),
			Hash:  binary.LittleEndian.Uint64(p[18:]),
		}
		p = p[frameRecSize:]
	}
	return out, nil
}

func decodeSnapshots(p []byte) ([]StateSnapshot, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("flight: truncated snapshot section")
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if n < 0 || n > len(p)/12 {
		return nil, fmt.Errorf("flight: snapshot section declares %d snapshots, %d bytes available", n, len(p))
	}
	out := make([]StateSnapshot, 0, n)
	for i := 0; i < n; i++ {
		s, rest, err := decodeSnapshot(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		p = rest
	}
	return out, nil
}

func decodeRemote(p []byte) ([]RemoteHash, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("flight: truncated remote-hash section")
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if n < 0 || n > len(p)/remoteRecSize {
		return nil, fmt.Errorf("flight: remote section declares %d records, %d bytes available", n, len(p))
	}
	out := make([]RemoteHash, n)
	for i := range out {
		out[i] = RemoteHash{
			Site:  int(int32(binary.LittleEndian.Uint32(p))),
			Frame: int64(binary.LittleEndian.Uint64(p[4:])),
			Hash:  binary.LittleEndian.Uint64(p[12:]),
		}
		p = p[remoteRecSize:]
	}
	return out, nil
}

// ROMHash is the FNV-1a/64 digest used for Manifest.ROMHash.
func ROMHash(image []byte) uint64 {
	h := fnv.New64a()
	h.Write(image)
	return h.Sum64()
}
