package flight_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/span"
)

// FuzzDecodeBundle throws arbitrary bytes at the incident-bundle parser,
// mirroring FuzzDecodeROM's contract for the "RK32" container: Decode must
// never panic — a triage run on a damaged black box fails with an error, not
// a crash — and any bundle it accepts must survive an encode/decode round
// trip with every section intact.
func FuzzDecodeBundle(f *testing.F) {
	// Seed with a real recorder-produced bundle so the fuzzer starts from
	// the genuine wire shape, not just random noise.
	rec, _ := recordRun(f, flight.Options{Site: 1, InputWindow: 16, SnapEvery: 4, Snapshots: 2}, 20, 0, 0, 0)
	rec.RecordRemoteHash(0, 18, 7)
	rec.Incident(core.IncidentDesync, fmt.Errorf("seed incident"))
	real := rec.Bundle()
	f.Add(real)
	f.Add(real[:len(real)-1]) // truncated checksum
	f.Add(real[:len(real)/2]) // torn mid-write
	flipped := append([]byte(nil), real...)
	flipped[8] ^= 0xFF // corrupt a section header: checksum must catch it
	f.Add(flipped)
	f.Add([]byte("RKFB"))
	minimal := (&flight.Bundle{Manifest: flight.Manifest{Version: flight.BundleVersion}}).Encode()
	f.Add(minimal)
	withAll := (&flight.Bundle{
		Manifest:     flight.Manifest{Version: flight.BundleVersion, Kind: "manual"},
		ROM:          []byte{1, 2, 3},
		Frames:       []flight.FrameRecord{{Frame: 9, Input: 2, Wait: time.Millisecond, Hash: 3}},
		Snapshots:    []flight.StateSnapshot{{Frame: 4, State: []byte{5}}},
		Final:        &flight.StateSnapshot{Frame: 9, State: []byte{6}},
		RemoteHashes: []flight.RemoteHash{{Site: 0, Frame: 9, Hash: 8}},
		Trace:        []byte("{}\n"),
		Metrics:      []byte("{}"),
		Spans:        []span.Span{{Frame: 9, Pressed: 1, Executed: 2, RemotePressed: 1, Retransmits: 3}},
	}).Encode()
	f.Add(withAll)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := flight.Decode(data)
		if err != nil {
			return
		}
		again, err := flight.Decode(b.Encode())
		if err != nil {
			t.Fatalf("re-decoding an accepted bundle failed: %v", err)
		}
		if !reflect.DeepEqual(again, b) {
			t.Fatalf("round trip changed the bundle:\n first %+v\nsecond %+v", b, again)
		}
	})
}
