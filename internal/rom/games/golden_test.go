package games

import (
	"bufio"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden replay hashes")

const (
	goldenSeed   = 0x5EED
	goldenFrames = 3600 // one minute of gameplay at 60 FPS
	goldenEvery  = 600  // checkpoint cadence (every 10 s)
)

// goldenInput is the deterministic synthetic player also used by the
// experiment harness (harness.PlayerInput): an FNV-1a hash of (seed, site,
// frame), masked to the site's pad byte. Reimplemented here because games
// is below harness in the import graph.
func goldenInput(seed int64, site, frame int) uint16 {
	h := fnv.New64a()
	var b [24]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
		b[8+i] = byte(site >> (8 * i))
		b[16+i] = byte(frame >> (8 * i))
	}
	h.Write(b[:])
	return uint16(h.Sum64()) & 0x00FF << (8 * (site & 1))
}

// replayHashes plays goldenFrames of the named game with both synthetic
// players and returns the state hash at every checkpoint frame.
func replayHashes(t *testing.T, name string) map[int]uint64 {
	t.Helper()
	c := mustBoot(t, name)
	out := make(map[int]uint64, goldenFrames/goldenEvery)
	for f := 0; f < goldenFrames; f++ {
		in := goldenInput(goldenSeed, 0, f) | goldenInput(goldenSeed, 1, f)
		c.StepFrame(in)
		if c.Halted() {
			t.Fatalf("%s halted at frame %d during the golden replay", name, f)
		}
		if (f+1)%goldenEvery == 0 {
			out[f+1] = c.StateHash()
		}
	}
	return out
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

func writeGolden(t *testing.T, name string, hashes map[int]uint64) {
	t.Helper()
	path := goldenPath(name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: state hash every %d frames over a %d-frame seeded replay (seed %#x)\n",
		name, goldenEvery, goldenFrames, goldenSeed)
	for f := goldenEvery; f <= goldenFrames; f += goldenEvery {
		fmt.Fprintf(&sb, "%d %016x\n", f, hashes[f])
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, name string) map[int]uint64 {
	t.Helper()
	f, err := os.Open(goldenPath(name))
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	defer f.Close()
	out := map[int]uint64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var frame int
		var hash uint64
		if _, err := fmt.Sscanf(line, "%d %x", &frame, &hash); err != nil {
			t.Fatalf("%s: bad golden line %q: %v", goldenPath(name), line, err)
		}
		out[frame] = hash
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenReplays pins down the exact execution of every shipped game:
// 3600 frames of seeded two-player input, state-hashed every 600 frames
// against checked-in goldens. Any change to the VM core, the assembler, the
// shared library runtime, or a game's source that alters observable
// behavior shows up here as a hash mismatch — the single-machine analogue
// of a cross-site divergence. Refresh intentionally with:
//
//	go test ./internal/rom/games/ -run TestGoldenReplays -update
func TestGoldenReplays(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			got := replayHashes(t, name)
			if *updateGolden {
				writeGolden(t, name, got)
				t.Logf("updated %s", goldenPath(name))
				return
			}
			want := readGolden(t, name)
			if len(want) == 0 {
				t.Fatalf("%s has no hash lines", goldenPath(name))
			}
			for f := goldenEvery; f <= goldenFrames; f += goldenEvery {
				w, ok := want[f]
				if !ok {
					t.Errorf("frame %d: missing from golden file", f)
					continue
				}
				if got[f] != w {
					t.Errorf("frame %d: state hash %016x, golden %016x", f, got[f], w)
				}
			}
		})
	}
}
