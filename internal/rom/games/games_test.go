package games

import (
	"math/rand"
	"testing"

	"retrolock/internal/vm"
)

func mustBoot(t *testing.T, name string) *vm.Console {
	t.Helper()
	r, err := Load(name)
	if err != nil {
		t.Fatalf("Load(%q): %v", name, err)
	}
	c, err := r.Boot()
	if err != nil {
		t.Fatalf("Boot(%q): %v", name, err)
	}
	c.EnableDebugLog() // the game tests observe SYS scoring events
	return c
}

// pads packs the two players' button bytes into the console input word.
func pads(p0, p1 byte) uint16 { return uint16(p0) | uint16(p1)<<8 }

func TestAllGamesAssembleAndSurviveFuzz(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c := mustBoot(t, name)
			rng := rand.New(rand.NewSource(7))
			for f := 0; f < 1200; f++ {
				c.StepFrame(uint16(rng.Intn(0x10000)))
				if c.Halted() {
					t.Fatalf("%s halted at frame %d (bug or illegal opcode)", name, f)
				}
			}
			if c.Overruns() != 0 {
				t.Errorf("%s overran the cycle budget %d times", name, c.Overruns())
			}
			// The screen must not be blank: games draw every frame.
			lit := 0
			for _, px := range c.Framebuffer() {
				if px != 0 {
					lit++
				}
			}
			if lit == 0 {
				t.Errorf("%s drew nothing after 1200 frames", name)
			}
		})
	}
}

func TestGamesAreDeterministicUnderLockstep(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := mustBoot(t, name)
			b := mustBoot(t, name)
			rng := rand.New(rand.NewSource(99))
			for f := 0; f < 1000; f++ {
				in := uint16(rng.Intn(0x10000))
				a.StepFrame(in)
				b.StepFrame(in)
				if a.StateHash() != b.StateHash() {
					t.Fatalf("%s replicas diverged at frame %d", name, f)
				}
			}
		})
	}
}

func TestUnknownGame(t *testing.T) {
	if _, err := Load("zork"); err == nil {
		t.Fatal("Load of unknown game succeeded")
	}
}

// --- Pong ---

const (
	pongP0Y    = 0x8010
	pongScore0 = 0x8018
)

func TestPongPaddleRespondsToInput(t *testing.T) {
	c := mustBoot(t, "pong")
	c.StepFrame(0) // init frame
	startY := c.Peek32(pongP0Y)
	for i := 0; i < 10; i++ {
		c.StepFrame(pads(vm.BtnDown, 0))
	}
	down := c.Peek32(pongP0Y)
	if down <= startY {
		t.Fatalf("paddle did not move down: %d -> %d", startY, down)
	}
	for i := 0; i < 60; i++ {
		c.StepFrame(pads(vm.BtnUp, 0))
	}
	if got := c.Peek32(pongP0Y); got != 0 {
		t.Fatalf("paddle did not clamp at the top: y=%d", got)
	}
	for i := 0; i < 120; i++ {
		c.StepFrame(pads(vm.BtnDown, 0))
	}
	if got := c.Peek32(pongP0Y); got != 80 {
		t.Fatalf("paddle did not clamp at the bottom: y=%d", got)
	}
}

func TestPongEventuallyScores(t *testing.T) {
	c := mustBoot(t, "pong")
	for f := 0; f < 36000; f++ {
		c.StepFrame(0) // both players idle
		if events := c.DebugLog(); len(events) >= 3 {
			for _, e := range events {
				if e.Code != 1 && e.Code != 2 && e.Code != 3 && e.Code != 4 {
					t.Fatalf("unexpected SYS code %d", e.Code)
				}
			}
			return
		}
	}
	t.Fatal("no scoring in 10 simulated minutes of idle pong")
}

func TestPongScoreMMIOMatchesSysLog(t *testing.T) {
	c := mustBoot(t, "pong")
	for f := 0; f < 36000; f++ {
		c.StepFrame(0)
		for _, e := range c.DebugLog() {
			if e.Code == 1 {
				// Score in RAM should match the logged value right
				// after the event (unless a match reset happened).
				if got := c.Peek32(pongScore0); got != e.Value && got != 0 {
					t.Fatalf("score0 RAM=%d, SYS logged %d", got, e.Value)
				}
				return
			}
		}
	}
	t.Skip("player 0 never scored in idle run; skipping RAM check")
}

// --- Duel ---

const (
	duelP0X  = 0x8100
	duelP1X  = 0x8140
	duelP1HP = 0x8140 + 12
)

func TestDuelWalkAndNoCross(t *testing.T) {
	c := mustBoot(t, "duel")
	c.StepFrame(0)
	x0 := c.Peek32(duelP0X)
	// Walk both fighters toward each other for 30 frames.
	for i := 0; i < 30; i++ {
		c.StepFrame(pads(vm.BtnRight, vm.BtnLeft))
	}
	nx0, nx1 := c.Peek32(duelP0X), c.Peek32(duelP1X)
	if nx0 <= x0 {
		t.Fatalf("fighter 0 did not walk right: %d -> %d", x0, nx0)
	}
	if nx1 < nx0+10 {
		t.Fatalf("fighters crossed: p0=%d p1=%d", nx0, nx1)
	}
	if nx1 != nx0+10 {
		t.Fatalf("fighters not in contact after 30 frames: p0=%d p1=%d", nx0, nx1)
	}
}

func TestDuelPunchDoesDamageAndWinsRound(t *testing.T) {
	c := mustBoot(t, "duel")
	c.StepFrame(0)
	// Close the distance.
	for i := 0; i < 30; i++ {
		c.StepFrame(pads(vm.BtnRight, vm.BtnLeft))
	}
	// Mash punch for 300 frames.
	sawHit := false
	sawRound := false
	for i := 0; i < 300; i++ {
		c.StepFrame(pads(vm.BtnA, 0))
	}
	for _, e := range c.DebugLog() {
		switch e.Code {
		case 12:
			sawHit = true
			if e.Value >= 40 {
				t.Fatalf("hit logged but hp=%d did not decrease", e.Value)
			}
		case 3:
			sawRound = true
		}
	}
	if !sawHit {
		t.Fatal("no hit registered while punching in contact")
	}
	if !sawRound {
		t.Fatal("player 1's hp never reached zero in 300 frames of punches")
	}
	if hp := int32(c.Peek32(duelP1HP)); hp <= 0 {
		t.Fatalf("round did not reset hp: p1 hp = %d", hp)
	}
}

func TestDuelBlockingReducesDamage(t *testing.T) {
	c := mustBoot(t, "duel")
	c.StepFrame(0)
	for i := 0; i < 30; i++ {
		c.StepFrame(pads(vm.BtnRight, vm.BtnLeft))
	}
	// Punch while player 1 blocks.
	for i := 0; i < 50; i++ {
		c.StepFrame(pads(vm.BtnA, vm.BtnB))
	}
	var worst uint32 = 40
	hits := 0
	for _, e := range c.DebugLog() {
		if e.Code == 12 {
			hits++
			if e.Value < worst {
				worst = e.Value
			}
		}
	}
	if hits == 0 {
		t.Fatal("no blocked hits registered")
	}
	// ~4 punches in 50 frames at 1 damage each: hp stays >= 40-hits.
	if worst < 40-uint32(hits)*1 {
		t.Fatalf("blocked damage too high: hp fell to %d after %d hits", worst, hits)
	}
}

// --- Tanks ---

func TestTanksManeuverAndShoot(t *testing.T) {
	c := mustBoot(t, "tanks")
	c.StepFrame(0)
	// Drive both tanks to the top lane (clear of obstacles).
	for i := 0; i < 60; i++ {
		c.StepFrame(pads(vm.BtnUp, vm.BtnUp))
	}
	const t0y = 0x8204
	if got := c.Peek32(t0y); got != 2 {
		t.Fatalf("tank 0 not at the top wall: y=%d", got)
	}
	// Face right again, then fire and wait for the shell to fly across.
	c.StepFrame(pads(vm.BtnRight, 0))
	for i := 0; i < 60; i++ {
		c.StepFrame(pads(vm.BtnA, 0))
	}
	scored := false
	for _, e := range c.DebugLog() {
		if e.Code == 1 && e.Value == 1 {
			scored = true
		}
	}
	if !scored {
		t.Fatal("tank 0's shell never hit tank 1 across the clear top lane")
	}
}

func TestTanksWallsBlockMovement(t *testing.T) {
	c := mustBoot(t, "tanks")
	c.StepFrame(0)
	const t0x = 0x8200
	// Drive left into the border; x must clamp at 2.
	for i := 0; i < 30; i++ {
		c.StepFrame(pads(vm.BtnLeft, 0))
	}
	if got := c.Peek32(t0x); got != 2 {
		t.Fatalf("tank 0 passed through the left wall: x=%d", got)
	}
}

func TestTanksShellStopsAtObstacle(t *testing.T) {
	c := mustBoot(t, "tanks")
	c.StepFrame(0)
	// Fire right from the start position: the centre obstacle is in the way.
	for i := 0; i < 120; i++ {
		c.StepFrame(pads(vm.BtnA, 0))
	}
	for _, e := range c.DebugLog() {
		if e.Code == 1 {
			t.Fatal("shell scored through the centre obstacle")
		}
	}
}

func TestCatalogMetadata(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("catalog has %d games, want >= 3", len(names))
	}
	seen := map[uint32]string{}
	for _, n := range names {
		meta := catalog[n]
		if meta.Title == "" {
			t.Errorf("game %q has no title", n)
		}
		if prev, dup := seen[meta.Seed]; dup {
			t.Errorf("games %q and %q share an LFSR seed", prev, n)
		}
		seen[meta.Seed] = n
		r := MustLoad(n)
		if r.Title != meta.Title {
			t.Errorf("game %q ROM title %q != catalog title %q", n, r.Title, meta.Title)
		}
		if len(r.Code)%4 != 0 {
			t.Errorf("game %q code length %d not instruction aligned", n, len(r.Code))
		}
	}
}
