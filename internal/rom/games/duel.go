package games

// Street Brawler: a two-player fighting game in the spirit of the paper's
// Street Fighter 2 testbed. Move with Left/Right, jump with Up, punch with
// A, block with B (blocked punches do 1 damage instead of 4). Three round
// wins take the match.
//
// SYS debug codes:
//
//	11: player 0 was hit (value = remaining hp)
//	12: player 1 was hit (value = remaining hp)
//	 3: player 0 won a round (value = round wins)
//	 4: player 1 won a round (value = round wins)
//	 5: player 0 won the match
//	 6: player 1 won the match
const duelSrc = `
; ---------------------------------------------------------------
; Street Brawler
; ---------------------------------------------------------------
; fighter struct offsets
.equ FX,     0        ; x position
.equ FY,     4        ; y position (top of 8x20 body; ground = 60)
.equ FVY,    8        ; vertical velocity
.equ FHP,    12       ; hit points
.equ FPUNCH, 16       ; punch animation frames remaining
.equ FHIT,   20       ; hit-flash frames remaining
.equ FPAD,   24       ; this frame's pad bits

.equ P0,     0x8100
.equ P1,     0x8140
.equ WINS0,  0x8180
.equ WINS1,  0x8184
.equ THUD,   0x8188

.equ GROUND,   60
.equ MAX_HP,   40
.equ WALK_SP,  2
.equ PUNCH_T,  10     ; punch lasts 10 frames, connects on frame 6
.equ REACH,    14
.equ WIN_ROUNDS, 3

start:
	call reset_round

main_loop:
	; latch pads
	li   r6, PAD0
	ldb  r7, [r6]
	li   r6, P0
	stw  r7, [r6+FPAD]
	li   r6, PAD0
	ldb  r7, [r6+1]
	li   r6, P1
	stw  r7, [r6+FPAD]

	; update fighters
	li   r12, P0
	li   r13, P1
	ldw  r14, [r12+FPAD]
	li   r11, 1
	call fighter_update
	li   r12, P1
	li   r13, P0
	ldw  r14, [r12+FPAD]
	li   r11, -1
	call fighter_update

	; keep the fighters from crossing: p1 stays right of p0
	li   r6, P0
	ldw  r1, [r6+FX]
	li   r7, P1
	ldw  r2, [r7+FX]
	addi r3, r1, 10
	bge  r2, r3, ml_no_cross
	stw  r3, [r7+FX]
ml_no_cross:

	call check_round
	call draw
	call do_audio
	yield
	jmp  main_loop

; ---------------------------------------------------------------
; fighter_update: r12 = my base, r13 = opponent base, r14 = my pad,
; r11 = facing (+1 when I am on the left, -1 on the right).
fighter_update:
	; horizontal movement
	ldw  r1, [r12+FX]
	andi r8, r14, 4            ; left
	beq  r8, r0, fu_no_left
	addi r1, r1, -WALK_SP
fu_no_left:
	andi r8, r14, 8            ; right
	beq  r8, r0, fu_no_right
	addi r1, r1, WALK_SP
fu_no_right:
	li   r8, 2
	bge  r1, r8, fu_clamp_lo
	mov  r1, r8
fu_clamp_lo:
	li   r8, 118
	blt  r1, r8, fu_clamp_hi
	mov  r1, r8
fu_clamp_hi:
	stw  r1, [r12+FX]

	; jump only from the ground
	ldw  r2, [r12+FY]
	li   r8, GROUND
	bne  r2, r8, fu_no_jump
	andi r8, r14, 1            ; up
	beq  r8, r0, fu_no_jump
	li   r8, -6
	stw  r8, [r12+FVY]
fu_no_jump:

	; vertical physics
	ldw  r3, [r12+FVY]
	add  r2, r2, r3
	addi r3, r3, 1
	li   r8, GROUND
	blt  r2, r8, fu_in_air
	mov  r2, r8
	mov  r3, r0
fu_in_air:
	stw  r2, [r12+FY]
	stw  r3, [r12+FVY]

	; hit-flash decay
	ldw  r8, [r12+FHIT]
	beq  r8, r0, fu_no_flash
	addi r8, r8, -1
	stw  r8, [r12+FHIT]
fu_no_flash:

	; punching
	ldw  r4, [r12+FPUNCH]
	bne  r4, r0, fu_punch_anim
	andi r8, r14, 16           ; A starts a punch
	beq  r8, r0, fu_done
	li   r4, PUNCH_T
	stw  r4, [r12+FPUNCH]
	ret
fu_punch_anim:
	addi r4, r4, -1
	stw  r4, [r12+FPUNCH]
	li   r8, 6
	bne  r4, r8, fu_done       ; connects exactly once, on frame 6

	; in reach horizontally?
	ldw  r1, [r12+FX]
	ldw  r5, [r13+FX]
	sub  r5, r5, r1
	mul  r5, r5, r11           ; distance toward my facing
	blt  r5, r0, fu_done
	li   r8, REACH
	blt  r8, r5, fu_done
	; same height band? |myY - oppY| <= 12
	ldw  r2, [r12+FY]
	ldw  r6, [r13+FY]
	sub  r6, r6, r2
	bge  r6, r0, fu_abs_done
	sub  r6, r0, r6
fu_abs_done:
	li   r8, 12
	blt  r8, r6, fu_done
	; blocked?
	ldw  r7, [r13+FPAD]
	andi r7, r7, 32            ; B blocks
	li   r9, 4
	beq  r7, r0, fu_damage
	li   r9, 1
fu_damage:
	ldw  r7, [r13+FHP]
	sub  r7, r7, r9
	stw  r7, [r13+FHP]
	li   r8, 6
	stw  r8, [r13+FHIT]
	li   r8, THUD
	li   r9, 3
	stw  r9, [r8]
	; log the victim's remaining hp
	li   r8, 1
	beq  r11, r8, fu_victim_p1
	sys  r7, 11
	ret
fu_victim_p1:
	sys  r7, 12
fu_done:
	ret

; ---------------------------------------------------------------
check_round:
	li   r6, P0
	ldw  r7, [r6+FHP]
	bge  r0, r7, cr_p1_wins    ; p0 hp <= 0
	li   r6, P1
	ldw  r7, [r6+FHP]
	bge  r0, r7, cr_p0_wins
	ret
cr_p0_wins:
	li   r6, WINS0
	ldw  r7, [r6]
	addi r7, r7, 1
	stw  r7, [r6]
	sys  r7, 3
	li   r8, WIN_ROUNDS
	bne  r7, r8, cr_reset
	sys  r7, 5
	li   r6, WINS0
	stw  r0, [r6]
	li   r6, WINS1
	stw  r0, [r6]
	jmp  cr_reset
cr_p1_wins:
	li   r6, WINS1
	ldw  r7, [r6]
	addi r7, r7, 1
	stw  r7, [r6]
	sys  r7, 4
	li   r8, WIN_ROUNDS
	bne  r7, r8, cr_reset
	sys  r7, 6
	li   r6, WINS0
	stw  r0, [r6]
	li   r6, WINS1
	stw  r0, [r6]
cr_reset:
	call reset_round
	ret

reset_round:
	li   r6, P0
	li   r7, 30
	stw  r7, [r6+FX]
	li   r7, GROUND
	stw  r7, [r6+FY]
	stw  r0, [r6+FVY]
	li   r7, MAX_HP
	stw  r7, [r6+FHP]
	stw  r0, [r6+FPUNCH]
	stw  r0, [r6+FHIT]
	li   r6, P1
	li   r7, 90
	stw  r7, [r6+FX]
	li   r7, GROUND
	stw  r7, [r6+FY]
	stw  r0, [r6+FVY]
	li   r7, MAX_HP
	stw  r7, [r6+FHP]
	stw  r0, [r6+FPUNCH]
	stw  r0, [r6+FHIT]
	ret

; ---------------------------------------------------------------
draw:
	li   r1, 11                ; dark backdrop
	call clear_screen
	; floor
	li   r1, 0
	li   r2, 80
	li   r3, 128
	li   r4, 2
	li   r5, 12
	call fill_rect

	; fighter 0 (light blue, flashes white when hit)
	li   r12, P0
	li   r5, 14
	li   r11, 1
	call draw_fighter
	; fighter 1 (light red)
	li   r12, P1
	li   r5, 10
	li   r11, -1
	call draw_fighter

	; hp bars: p0 from the left, p1 from the right (1 px per hp)
	li   r6, P0
	ldw  r3, [r6+FHP]
	bge  r0, r3, dr_hp1
	li   r1, 2
	li   r2, 2
	li   r4, 3
	li   r5, 5
	call fill_rect
dr_hp1:
	li   r6, P1
	ldw  r3, [r6+FHP]
	bge  r0, r3, dr_wins
	li   r1, 126
	sub  r1, r1, r3
	li   r2, 2
	li   r4, 3
	li   r5, 5
	call fill_rect

dr_wins:
	; round-win pips under the bars
	li   r6, WINS0
	ldw  r10, [r6]
	li   r11, 2
dr_w0:
	beq  r10, r0, dr_w0_done
	mov  r1, r11
	li   r2, 7
	li   r3, 3
	li   r4, 2
	li   r5, 7
	call fill_rect
	addi r11, r11, 5
	addi r10, r10, -1
	jmp  dr_w0
dr_w0_done:
	li   r6, WINS1
	ldw  r10, [r6]
	li   r11, 123
dr_w1:
	beq  r10, r0, dr_w1_done
	mov  r1, r11
	li   r2, 7
	li   r3, 3
	li   r4, 2
	li   r5, 7
	call fill_rect
	addi r11, r11, -5
	addi r10, r10, -1
	jmp  dr_w1
dr_w1_done:
	ret

; draw_fighter: r12 = base, r5 = body color, r11 = facing.
draw_fighter:
	ldw  r8, [r12+FHIT]
	beq  r8, r0, df_color_done
	li   r5, 1                 ; flash white
df_color_done:
	ldw  r1, [r12+FX]
	ldw  r2, [r12+FY]
	li   r3, 8
	li   r4, 20
	call fill_rect
	; arm while punching: extends from mid-body toward the opponent
	ldw  r8, [r12+FPUNCH]
	beq  r8, r0, df_done
	ldw  r1, [r12+FX]
	ldw  r2, [r12+FY]
	addi r2, r2, 6
	li   r3, 8
	li   r4, 3
	li   r7, 1
	bne  r11, r7, df_arm_left
	addi r1, r1, 8             ; arm to the right
	jmp  df_arm_draw
df_arm_left:
	addi r1, r1, -8
df_arm_draw:
	li   r5, 7
	call fill_rect
df_done:
	ret

; ---------------------------------------------------------------
do_audio:
	li   r6, THUD
	ldw  r7, [r6]
	beq  r7, r0, da2_off
	addi r7, r7, -1
	stw  r7, [r6]
	li   r1, 6                 ; low thud
	li   r2, 220
	call tone
	ret
da2_off:
	mov  r1, r0
	mov  r2, r0
	call tone
	ret
`
