package games

import (
	"testing"

	"retrolock/internal/vm"
)

const (
	breakoutP0X   = 0x8410
	breakoutScore = 0x8418
	breakoutLives = 0x841C
	breakoutAlive = 0x8440
)

func TestBreakoutBallBreaksBricks(t *testing.T) {
	c := mustBoot(t, "breakout")
	// The ball launches upward from the center into the brick field.
	for f := 0; f < 200; f++ {
		c.StepFrame(0)
	}
	hits := 0
	for _, e := range c.DebugLog() {
		if e.Code == 1 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no brick destroyed in 200 frames")
	}
	if got := c.Peek32(breakoutScore); int(got) != hits && got != 0 {
		// Score resets on game over; tolerate that, otherwise match.
		t.Logf("score RAM %d vs %d logged hits (reset happened?)", got, hits)
	}
	if alive := c.Peek32(breakoutAlive); alive > 32 || int(alive) > 32-hits+32 {
		t.Fatalf("alive-brick counter corrupt: %d", alive)
	}
}

func TestBreakoutLosesLivesWhenIdle(t *testing.T) {
	c := mustBoot(t, "breakout")
	sawLifeLost := false
	for f := 0; f < 3000 && !sawLifeLost; f++ {
		c.StepFrame(0)
		for _, e := range c.DebugLog() {
			if e.Code == 2 {
				sawLifeLost = true
				if e.Value >= 3 {
					t.Fatalf("life-lost event with %d lives remaining", e.Value)
				}
			}
		}
	}
	if !sawLifeLost {
		t.Fatal("idle paddles never lost the ball in 3000 frames")
	}
}

func TestBreakoutGameOverResets(t *testing.T) {
	c := mustBoot(t, "breakout")
	for f := 0; f < 12000; f++ {
		c.StepFrame(0)
		for _, e := range c.DebugLog() {
			if e.Code == 5 { // game over
				// After the reset, lives are restored.
				c.StepFrame(0)
				if lives := c.Peek32(breakoutLives); lives != 3 {
					t.Fatalf("lives after game over = %d, want 3", lives)
				}
				return
			}
		}
	}
	t.Fatal("no game over in 12000 idle frames (ball never drains 3 lives?)")
}

func TestBreakoutPaddleClamping(t *testing.T) {
	c := mustBoot(t, "breakout")
	c.StepFrame(0)
	for f := 0; f < 60; f++ {
		c.StepFrame(pads(vm.BtnLeft, 0))
	}
	if got := c.Peek32(breakoutP0X); got != 2 {
		t.Fatalf("paddle 0 x = %d at left clamp, want 2", got)
	}
	for f := 0; f < 60; f++ {
		c.StepFrame(pads(vm.BtnRight, 0))
	}
	if got := c.Peek32(breakoutP0X); got != 62-14 {
		t.Fatalf("paddle 0 x = %d at right clamp, want %d (half-court)", got, 62-14)
	}
}

func TestBreakoutPaddleDeflectsBall(t *testing.T) {
	// Compare two runs: with paddles chasing the ball (crude bot) vs
	// idle. The bot run must keep the ball alive longer (fewer life
	// losses in the same frame budget).
	countLost := func(bot bool) int {
		c := mustBoot(t, "breakout")
		const ballXAddr = 0x8400
		for f := 0; f < 2500; f++ {
			var in uint16
			if bot {
				bx := int32(c.Peek32(ballXAddr))
				p0 := int32(c.Peek32(breakoutP0X))
				var pad0, pad1 byte
				if bx < p0+7 {
					pad0 = vm.BtnLeft
				} else {
					pad0 = vm.BtnRight
				}
				p1 := int32(c.Peek32(breakoutP0X + 4))
				if bx < p1+7 {
					pad1 = vm.BtnLeft
				} else {
					pad1 = vm.BtnRight
				}
				in = pads(pad0, pad1)
			}
			c.StepFrame(in)
		}
		lost := 0
		for _, e := range c.DebugLog() {
			if e.Code == 2 || e.Code == 5 {
				lost++
			}
		}
		return lost
	}
	idle := countLost(false)
	bot := countLost(true)
	if bot >= idle {
		t.Fatalf("bot paddles lost %d balls vs idle %d; paddles don't deflect", bot, idle)
	}
}
