package games

import (
	"bytes"
	"testing"

	"retrolock/internal/rom"
	"retrolock/internal/vm"
)

// FuzzAssemble feeds mutated game source through the whole cartridge
// toolchain: assemble, wrap, encode, decode, disassemble. Seeded with the
// real source of all six shipped games, so the corpus starts on the valid
// grammar and mutates outward. Properties: the assembler never panics and
// never emits more than the 64 KiB address space; anything it accepts
// survives the container round-trip byte-for-byte; and the disassembler
// renders the accepted image without panicking.
func FuzzAssemble(f *testing.F) {
	for _, src := range []string{pongSrc, duelSrc, tanksSrc, cyclesSrc, breakoutSrc, goldrushSrc} {
		f.Add(src + libSrc)
	}
	f.Add(libSrc)
	f.Add("start:\n\tmovi r1, 1\n\tjmp start\n")
	f.Add(".org 0x100\n.space 16, 0xAA\n.word start\nstart: ret\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 128*1024 {
			t.Skip("oversized input")
		}
		a, err := rom.Assemble(src)
		if err != nil {
			return
		}
		if len(a.Code) > rom.MaxImageSize {
			t.Fatalf("assembler emitted %d bytes, past the %d-byte address space", len(a.Code), rom.MaxImageSize)
		}
		r := &rom.ROM{Title: "Fuzz", Entry: a.Entry(), Seed: 7, Code: a.Code}
		decoded, err := rom.Decode(r.Encode())
		if err != nil {
			t.Fatalf("decoding a freshly encoded ROM failed: %v", err)
		}
		if !bytes.Equal(decoded.Code, a.Code) {
			t.Fatal("container round-trip changed the code image")
		}
		_ = vm.DisassembleCode(decoded.Code, 0)
	})
}
