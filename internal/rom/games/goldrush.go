package games

// Gold Rush: a 60-second score attack. Gold nuggets (and the occasional
// rock) rain from the sky at LFSR-random positions; each miner steers
// left/right to catch gold (+1) and dodge rocks (-1). Highest score when
// the timer runs out wins the round. The random spawn schedule exercises
// the console's deterministic RNG harder than any other shipped game: both
// replicas must see byte-identical rains.
//
// SYS debug codes:
//
//	1: miner 0 caught gold (value = new score)
//	2: miner 1 caught gold (value = new score)
//	5: miner 0 hit a rock (value = new score)
//	6: miner 1 hit a rock (value = new score)
//	3: miner 0 won the round (value = score)
//	4: miner 1 won the round (value = score)
//	7: round tied (value = shared score)
const goldrushSrc = `
; ---------------------------------------------------------------
; Gold Rush
; ---------------------------------------------------------------
; miner struct offsets
.equ MX,     0
.equ MSCORE, 4
.equ MPAD,   8

.equ M0,     0x8480
.equ M1,     0x84A0

; falling object slots: 6 x 16 bytes
.equ OBJS,   0x8500
.equ OACT,   0        ; active flag
.equ OX,     4
.equ OY,     8
.equ OTYPE,  12       ; 0 = gold, 1 = rock
.equ NOBJS,  6

.equ TIMER,  0x85C0   ; frames remaining in the round
.equ CHIRP,  0x85C4   ; audio: gold chirp frames
.equ THUMP,  0x85C8   ; audio: rock thump frames

.equ MINER_Y,  84
.equ MINER_W,  8
.equ MINER_H,  8
.equ OBJ_SZ,   4
.equ ROUND_FRAMES, 3600
.equ HUD,      8

start:
	call new_round

main_loop:
	; latch pads
	li   r6, PAD0
	ldb  r7, [r6]
	li   r6, M0
	stw  r7, [r6+MPAD]
	li   r6, PAD0
	ldb  r7, [r6+1]
	li   r6, M1
	stw  r7, [r6+MPAD]

	li   r12, M0
	call move_miner
	li   r12, M1
	call move_miner

	call spawn
	call fall_and_catch
	call tick_timer
	call draw
	call do_audio
	yield
	jmp  main_loop

; ---------------------------------------------------------------
move_miner:
	ldw  r1, [r12+MX]
	ldw  r7, [r12+MPAD]
	andi r8, r7, 4
	beq  r8, r0, mm_no_left
	addi r1, r1, -2
mm_no_left:
	andi r8, r7, 8
	beq  r8, r0, mm_no_right
	addi r1, r1, 2
mm_no_right:
	li   r8, 2
	bge  r1, r8, mm_min_ok
	mov  r1, r8
mm_min_ok:
	li   r8, 118
	bge  r8, r1, mm_max_ok
	mov  r1, r8
mm_max_ok:
	stw  r1, [r12+MX]
	ret

; ---------------------------------------------------------------
spawn:
	; roughly one object every 16 frames
	rand r7
	andi r7, r7, 15
	bne  r7, r0, sp_done
	; find a free slot
	li   r6, OBJS
	li   r9, NOBJS
sp_scan:
	beq  r9, r0, sp_done
	ldw  r7, [r6+OACT]
	beq  r7, r0, sp_found
	addi r6, r6, 16
	addi r9, r9, -1
	jmp  sp_scan
sp_found:
	li   r7, 1
	stw  r7, [r6+OACT]
	rand r7
	li   r8, 116
	mod  r7, r7, r8
	addi r7, r7, 2
	stw  r7, [r6+OX]
	li   r7, HUD+2
	stw  r7, [r6+OY]
	; one in four is a rock
	rand r7
	andi r7, r7, 3
	beq  r7, r0, sp_rock
	stw  r0, [r6+OTYPE]
	ret
sp_rock:
	li   r7, 1
	stw  r7, [r6+OTYPE]
sp_done:
	ret

; ---------------------------------------------------------------
fall_and_catch:
	li   r10, OBJS
	li   r11, NOBJS
fc_loop:
	beq  r11, r0, fc_done
	ldw  r7, [r10+OACT]
	beq  r7, r0, fc_next
	ldw  r2, [r10+OY]
	addi r2, r2, 1
	stw  r2, [r10+OY]
	; off the bottom?
	li   r7, 92
	blt  r7, r2, fc_kill
	; at miner height?
	li   r7, MINER_Y - OBJ_SZ
	blt  r2, r7, fc_next
	; test both miners
	ldw  r1, [r10+OX]
	li   r12, M0
	call catch_test
	bne  r1, r0, fc_caught_m0
	ldw  r1, [r10+OX]
	li   r12, M1
	call catch_test
	bne  r1, r0, fc_caught_m1
	jmp  fc_next
fc_caught_m0:
	li   r9, 0
	call apply_catch
	jmp  fc_next
fc_caught_m1:
	li   r9, 1
	call apply_catch
	jmp  fc_next
fc_kill:
	stw  r0, [r10+OACT]
fc_next:
	addi r10, r10, 16
	addi r11, r11, -1
	jmp  fc_loop
fc_done:
	ret

; catch_test: r1 = object x, r12 = miner base -> r1 = 1 on overlap.
catch_test:
	ldw  r7, [r12+MX]
	; overlap if ox + OBJ_SZ > mx and ox < mx + MINER_W
	addi r8, r1, OBJ_SZ
	bge  r7, r8, ct_miss
	addi r8, r7, MINER_W
	bge  r1, r8, ct_miss
	li   r1, 1
	ret
ct_miss:
	mov  r1, r0
	ret

; apply_catch: r10 = object base, r9 = miner index (0/1).
apply_catch:
	stw  r0, [r10+OACT]
	li   r12, M0
	beq  r9, r0, ac_have
	li   r12, M1
ac_have:
	ldw  r7, [r12+MSCORE]
	ldw  r8, [r10+OTYPE]
	bne  r8, r0, ac_rock
	; gold
	addi r7, r7, 1
	stw  r7, [r12+MSCORE]
	li   r8, CHIRP
	li   r6, 4
	stw  r6, [r8]
	beq  r9, r0, ac_sys_g0
	sys  r7, 2
	ret
ac_sys_g0:
	sys  r7, 1
	ret
ac_rock:
	; rock: -1, floored at zero
	beq  r7, r0, ac_floor
	addi r7, r7, -1
ac_floor:
	stw  r7, [r12+MSCORE]
	li   r8, THUMP
	li   r6, 5
	stw  r6, [r8]
	beq  r9, r0, ac_sys_r0
	sys  r7, 6
	ret
ac_sys_r0:
	sys  r7, 5
	ret

; ---------------------------------------------------------------
tick_timer:
	li   r6, TIMER
	ldw  r7, [r6]
	addi r7, r7, -1
	stw  r7, [r6]
	bne  r7, r0, tt_done
	; round over: compare scores
	li   r6, M0
	ldw  r7, [r6+MSCORE]
	li   r6, M1
	ldw  r8, [r6+MSCORE]
	blt  r8, r7, tt_m0_wins
	blt  r7, r8, tt_m1_wins
	sys  r7, 7
	jmp  tt_reset
tt_m0_wins:
	sys  r7, 3
	jmp  tt_reset
tt_m1_wins:
	sys  r8, 4
tt_reset:
	call new_round
tt_done:
	ret

new_round:
	li   r6, TIMER
	li   r7, ROUND_FRAMES
	stw  r7, [r6]
	li   r6, M0
	li   r7, 30
	stw  r7, [r6+MX]
	stw  r0, [r6+MSCORE]
	li   r6, M1
	li   r7, 90
	stw  r7, [r6+MX]
	stw  r0, [r6+MSCORE]
	; clear object slots
	li   r6, OBJS
	li   r9, NOBJS
nr_clear:
	beq  r9, r0, nr_done
	stw  r0, [r6+OACT]
	addi r6, r6, 16
	addi r9, r9, -1
	jmp  nr_clear
nr_done:
	ret

; ---------------------------------------------------------------
draw:
	movi r1, 0
	call clear_screen
	; ground
	li   r1, 0
	li   r2, 92
	li   r3, 128
	li   r4, 4
	li   r5, 9
	call fill_rect

	; falling objects
	li   r10, OBJS
	li   r11, NOBJS
dr3_objs:
	beq  r11, r0, dr3_objs_done
	ldw  r7, [r10+OACT]
	beq  r7, r0, dr3_next
	ldw  r1, [r10+OX]
	ldw  r2, [r10+OY]
	li   r3, OBJ_SZ
	li   r4, OBJ_SZ
	ldw  r7, [r10+OTYPE]
	li   r5, 7                 ; gold
	beq  r7, r0, dr3_colored
	li   r5, 12                ; rock
dr3_colored:
	call fill_rect
dr3_next:
	addi r10, r10, 16
	addi r11, r11, -1
	jmp  dr3_objs
dr3_objs_done:

	; miners
	li   r6, M0
	ldw  r1, [r6+MX]
	li   r2, MINER_Y
	li   r3, MINER_W
	li   r4, MINER_H
	li   r5, 14
	call fill_rect
	li   r6, M1
	ldw  r1, [r6+MX]
	li   r2, MINER_Y
	li   r3, MINER_W
	li   r4, MINER_H
	li   r5, 8
	call fill_rect

	; HUD: scores and the countdown in seconds
	li   r6, M0
	ldw  r3, [r6+MSCORE]
	li   r1, 4
	li   r2, 1
	li   r4, 14
	call draw_number
	li   r6, M1
	ldw  r3, [r6+MSCORE]
	li   r1, 117
	li   r2, 1
	li   r4, 8
	call draw_number
	li   r6, TIMER
	ldw  r3, [r6]
	divi r3, r3, 60
	li   r1, 60
	li   r2, 1
	li   r4, 1
	call draw_number
	ret

; ---------------------------------------------------------------
do_audio:
	li   r6, CHIRP
	ldw  r7, [r6]
	beq  r7, r0, da6_thump
	addi r7, r7, -1
	stw  r7, [r6]
	li   r1, 48                ; high chirp
	li   r2, 150
	call tone
	ret
da6_thump:
	li   r6, THUMP
	ldw  r7, [r6]
	beq  r7, r0, da6_off
	addi r7, r7, -1
	stw  r7, [r6]
	li   r1, 4                 ; low thump
	li   r2, 220
	call tone
	ret
da6_off:
	mov  r1, r0
	mov  r2, r0
	call tone
	ret
`
