package games

// Brick Brigade: cooperative breakout. Player 0 steers the left paddle
// (confined to the left half), player 1 the right paddle; one shared ball,
// three shared lives. Clearing all 32 bricks wins the level; losing the
// ball below the paddles costs a life.
//
// SYS debug codes:
//
//	1: brick destroyed (value = new score)
//	2: life lost (value = lives remaining)
//	3: level cleared (value = score)
//	5: game over (value = final score)
const breakoutSrc = `
; ---------------------------------------------------------------
; Brick Brigade
; ---------------------------------------------------------------
.equ BALLX,  0x8400
.equ BALLY,  0x8404
.equ VELX,   0x8408
.equ VELY,   0x840C
.equ P0X,    0x8410
.equ P1X,    0x8414
.equ SCORE,  0x8418
.equ LIVES,  0x841C
.equ BRICKS, 0x8420       ; 32 bytes, 1 = alive
.equ ALIVE,  0x8440       ; remaining brick count
.equ PING,   0x8444       ; audio trigger

.equ HUD,       8         ; HUD strip height
.equ BRICK_W,   16
.equ BRICK_H,   5
.equ BRICK_Y0,  16
.equ COLS,      8
.equ ROWS,      4
.equ PAD_W,     14
.equ PAD_Y,     90
.equ PAD_SPEED, 2
.equ BALLSZ,    2
.equ START_LIVES, 3

start:
	call new_level
	li   r6, LIVES
	li   r7, START_LIVES
	stw  r7, [r6]
	li   r6, SCORE
	stw  r0, [r6]

main_loop:
	call read_paddles
	call move_ball
	call draw
	call do_audio
	yield
	jmp  main_loop

; ---------------------------------------------------------------
read_paddles:
	; paddle 0: left/right within [2, 62-PAD_W]
	li   r6, PAD0
	ldb  r1, [r6]
	li   r6, P0X
	li   r9, 2
	li   r10, 62-PAD_W
	call move_paddle
	; paddle 1: within [66, 126-PAD_W]
	li   r6, PAD0
	ldb  r1, [r6+1]
	li   r6, P1X
	li   r9, 66
	li   r10, 126-PAD_W
	call move_paddle
	ret

; move_paddle: r1 = pad bits, r6 = X address, r9 = min, r10 = max.
move_paddle:
	ldw  r7, [r6]
	andi r8, r1, 4          ; left
	beq  r8, r0, mp_no_left
	addi r7, r7, -PAD_SPEED
mp_no_left:
	andi r8, r1, 8          ; right
	beq  r8, r0, mp_no_right
	addi r7, r7, PAD_SPEED
mp_no_right:
	bge  r7, r9, mp_min_ok
	mov  r7, r9
mp_min_ok:
	bge  r10, r7, mp_max_ok
	mov  r7, r10
mp_max_ok:
	stw  r7, [r6]
	ret

; ---------------------------------------------------------------
move_ball:
	li   r6, BALLX
	ldw  r1, [r6]
	li   r6, BALLY
	ldw  r2, [r6]
	li   r6, VELX
	ldw  r3, [r6]
	li   r6, VELY
	ldw  r4, [r6]
	add  r1, r1, r3
	add  r2, r2, r4

	; side walls
	bge  r1, r0, mb2_no_left
	mov  r1, r0
	sub  r3, r0, r3
	call ping_on
mb2_no_left:
	li   r7, 126
	bge  r7, r1, mb2_no_right
	mov  r1, r7
	sub  r3, r0, r3
	call ping_on
mb2_no_right:
	; ceiling (below the HUD)
	li   r7, HUD
	bge  r2, r7, mb2_no_top
	mov  r2, r7
	sub  r4, r0, r4
	call ping_on
mb2_no_top:

	; brick field? (y in [BRICK_Y0, BRICK_Y0 + ROWS*7))
	li   r7, BRICK_Y0
	blt  r2, r7, mb2_no_brick
	li   r7, BRICK_Y0 + 4*7
	bge  r2, r7, mb2_no_brick
	; column = x/16, row = (y-BRICK_Y0)/7
	shri r8, r1, 4
	addi r9, r2, -BRICK_Y0
	divi r9, r9, 7
	; only rows with bricks (rows are 5px of 7px pitch; gaps miss)
	addi r10, r2, -BRICK_Y0
	modi r10, r10, 7
	li   r7, BRICK_H
	bge  r10, r7, mb2_no_brick
	; index = row*8 + col
	shli r9, r9, 3
	add  r9, r9, r8
	li   r7, BRICKS
	add  r7, r7, r9
	ldb  r8, [r7]
	beq  r8, r0, mb2_no_brick
	; destroy the brick
	stb  r0, [r7]
	sub  r4, r0, r4
	call ping_on
	li   r6, ALIVE
	ldw  r7, [r6]
	addi r7, r7, -1
	stw  r7, [r6]
	li   r6, SCORE
	ldw  r8, [r6]
	addi r8, r8, 1
	stw  r8, [r6]
	sys  r8, 1
	bne  r7, r0, mb2_no_brick
	; level cleared (new_level repositions the ball; skip the store)
	sys  r8, 3
	call new_level
	jmp  mb2_done
mb2_no_brick:

	; paddles (ball falling, at paddle height)
	blt  r4, r0, mb2_no_pad           ; moving up: no paddle check
	li   r7, PAD_Y - BALLSZ
	blt  r2, r7, mb2_no_pad
	li   r7, PAD_Y + 2
	bge  r2, r7, mb2_no_pad
	; try paddle 0 then paddle 1
	li   r6, P0X
	ldw  r8, [r6]
	call pad_hit
	bne  r11, r0, mb2_deflect
	li   r6, P1X
	ldw  r8, [r6]
	call pad_hit
	beq  r11, r0, mb2_no_pad
mb2_deflect:
	; bounce; steer by hit side (r12 = -1 left half, +1 right)
	li   r2, PAD_Y - BALLSZ
	li   r4, -1                        ; vy up
	mov  r3, r12
	call ping_on
mb2_no_pad:

	; lost below the paddles?
	li   r7, 94
	bge  r7, r2, mb2_store
	li   r6, LIVES
	ldw  r7, [r6]
	addi r7, r7, -1
	stw  r7, [r6]
	sys  r7, 2
	bne  r7, r0, mb2_respawn
	; game over: report, reset everything
	li   r6, SCORE
	ldw  r8, [r6]
	sys  r8, 5
	stw  r0, [r6]
	li   r6, LIVES
	li   r7, START_LIVES
	stw  r7, [r6]
	call new_level
	jmp  mb2_done
mb2_respawn:
	call reset_ball
	jmp  mb2_done

mb2_store:
	li   r6, BALLX
	stw  r1, [r6]
	li   r6, BALLY
	stw  r2, [r6]
	li   r6, VELX
	stw  r3, [r6]
	li   r6, VELY
	stw  r4, [r6]
mb2_done:
	ret

; pad_hit: r1 = ball x, r8 = paddle x. Sets r11 = 1 on hit and r12 to the
; deflection (-1 when the ball struck the left half, +1 right half).
pad_hit:
	mov  r11, r0
	; hit if ballx + BALLSZ > padx and ballx < padx + PAD_W
	addi r7, r1, BALLSZ
	bge  r8, r7, ph_done          ; padx >= ballx+sz: miss
	addi r7, r8, PAD_W
	bge  r1, r7, ph_done          ; ballx >= padx+w: miss
	li   r11, 1
	; which half?
	addi r7, r8, PAD_W/2
	li   r12, 1
	bge  r1, r7, ph_done
	li   r12, -1
ph_done:
	ret

ping_on:
	li   r8, PING
	li   r9, 3
	stw  r9, [r8]
	ret

reset_ball:
	li   r6, BALLX
	li   r7, 63
	stw  r7, [r6]
	li   r6, BALLY
	li   r7, 60
	stw  r7, [r6]
	rand r7
	andi r8, r7, 1
	li   r9, 1
	bne  r8, r0, rb2_vx
	li   r9, -1
rb2_vx:
	li   r6, VELX
	stw  r9, [r6]
	li   r6, VELY
	li   r9, -1
	stw  r9, [r6]
	ret

; ---------------------------------------------------------------
new_level:
	; all 32 bricks alive
	li   r6, BRICKS
	li   r7, 32
nl_loop:
	beq  r7, r0, nl_done
	li   r8, 1
	stb  r8, [r6]
	addi r6, r6, 1
	addi r7, r7, -1
	jmp  nl_loop
nl_done:
	li   r6, ALIVE
	li   r7, 32
	stw  r7, [r6]
	call reset_ball
	; center the paddles
	li   r6, P0X
	li   r7, 24
	stw  r7, [r6]
	li   r6, P1X
	li   r7, 90
	stw  r7, [r6]
	ret

; ---------------------------------------------------------------
draw:
	movi r1, 0
	call clear_screen

	; bricks (color varies by row)
	mov  r10, r0                   ; index 0..31
dr2_bricks:
	li   r7, 32
	bge  r10, r7, dr2_bricks_done
	li   r6, BRICKS
	add  r6, r6, r10
	ldb  r7, [r6]
	beq  r7, r0, dr2_next
	; x = (i%8)*16, y = BRICK_Y0 + (i/8)*7
	andi r1, r10, 7
	shli r1, r1, 4
	addi r1, r1, 1
	shri r2, r10, 3
	muli r2, r2, 7
	addi r2, r2, BRICK_Y0
	li   r3, BRICK_W-2
	li   r4, BRICK_H
	shri r5, r10, 3
	addi r5, r5, 2                 ; row colors 2..5
	call fill_rect
dr2_next:
	addi r10, r10, 1
	jmp  dr2_bricks
dr2_bricks_done:

	; paddles
	li   r6, P0X
	ldw  r1, [r6]
	li   r2, PAD_Y
	li   r3, PAD_W
	li   r4, 3
	li   r5, 14
	call fill_rect
	li   r6, P1X
	ldw  r1, [r6]
	li   r2, PAD_Y
	li   r3, PAD_W
	li   r4, 3
	li   r5, 8
	call fill_rect

	; ball
	li   r6, BALLX
	ldw  r1, [r6]
	li   r6, BALLY
	ldw  r2, [r6]
	li   r3, BALLSZ
	li   r4, BALLSZ
	li   r5, 7
	call fill_rect

	; HUD: score digits + life pips
	li   r6, SCORE
	ldw  r3, [r6]
	li   r1, 4
	li   r2, 1
	li   r4, 1
	call draw_number
	li   r6, LIVES
	ldw  r10, [r6]
	li   r11, 118
dr2_lives:
	beq  r10, r0, dr2_lives_done
	mov  r1, r11
	li   r2, 2
	li   r3, 4
	li   r4, 3
	li   r5, 10
	call fill_rect
	addi r11, r11, -6
	addi r10, r10, -1
	jmp  dr2_lives
dr2_lives_done:
	ret

; ---------------------------------------------------------------
do_audio:
	li   r6, PING
	ldw  r7, [r6]
	beq  r7, r0, da5_off
	addi r7, r7, -1
	stw  r7, [r6]
	li   r1, 40
	li   r2, 160
	call tone
	ret
da5_off:
	mov  r1, r0
	mov  r2, r0
	call tone
	ret
`
