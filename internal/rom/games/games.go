// Package games ships the RK-32 game library: complete two-player arcade
// games written in the console's assembly language and distributed as ROM
// images.
//
// These play the role of the legacy game in the paper's evaluation (§4 used
// Street Fighter 2 under MAME, noting "the actual game does not affect the
// results"). Each game reads both pads from MMIO every frame, so player 0
// controls input bits 0-7 and player 1 controls bits 8-15 — the SET[k]
// partition the sync algorithm distributes across sites. The games never
// interact with the sync layer; they are opaque ROMs, which is the whole
// point of game transparency.
package games

import (
	"fmt"
	"sort"

	"retrolock/internal/rom"
)

// libSrc is the shared drawing runtime appended to every game.
//
// Calling convention: arguments in r1-r5, return value in r1; the library
// routines clobber only r6-r9.
const libSrc = `
; ---------------------------------------------------------------
; shared runtime
; ---------------------------------------------------------------
.equ VRAM,    0xC000
.equ VRAMEND, 0xF000
.equ PAD0,    0xF000
.equ PAD1,    0xF001
.equ AUDIOF,  0xF004
.equ AUDIOV,  0xF005
.equ BLITX,   0xF008

; clear_screen: fill VRAM with color r1 via the MMIO blitter. Clobbers r6-r8.
clear_screen:
	li   r8, BLITX
	stb  r0, [r8]         ; x = 0
	stb  r0, [r8+1]       ; y = 0
	li   r6, 128
	stb  r6, [r8+2]       ; w = screen width
	li   r6, 96
	stb  r6, [r8+3]       ; h = screen height
	stb  r1, [r8+4]       ; color
	stb  r0, [r8+5]       ; go
	ret

; fill_rect: draw w x h rect of color r5 at (r1, r2), w=r3 h=r4, via the
; MMIO blitter (which clips to the screen). Clobbers r6-r9.
fill_rect:
	li   r8, BLITX
	stb  r1, [r8]
	stb  r2, [r8+1]
	stb  r3, [r8+2]
	stb  r4, [r8+3]
	stb  r5, [r8+4]
	stb  r0, [r8+5]       ; go
	ret

; tone: program the audio registers; r1 = freq index (0 = off), r2 = volume.
; Clobbers r8.
tone:
	li   r8, AUDIOF
	stb  r1, [r8]
	stb  r2, [r8+1]
	ret

; draw_digit: render digit r3 (0-9) in color r4 at (r1, r2) using the 3x5
; font below. Preserves r1-r5; clobbers r6-r10.
draw_digit:
	li   r6, font3x5
	muli r7, r3, 5
	add  r6, r6, r7        ; glyph pointer
	mov  r10, r0           ; row counter
dd_row:
	li   r7, 5
	bge  r10, r7, dd_done
	ldb  r7, [r6]          ; row bits: bit2 left, bit0 right
	add  r8, r2, r10
	shli r8, r8, 7
	add  r8, r8, r1
	li   r9, VRAM
	add  r8, r8, r9        ; address of the leftmost pixel
	andi r9, r7, 4
	beq  r9, r0, dd_c1
	stb  r4, [r8]
dd_c1:
	andi r9, r7, 2
	beq  r9, r0, dd_c2
	stb  r4, [r8+1]
dd_c2:
	andi r9, r7, 1
	beq  r9, r0, dd_c3
	stb  r4, [r8+2]
dd_c3:
	addi r6, r6, 1
	addi r10, r10, 1
	jmp  dd_row
dd_done:
	ret

; draw_number: render r3 (0-99) in color r4 at (r1, r2) as two digits.
; Preserves r1-r5; clobbers r6-r12.
draw_number:
	mov  r11, r3           ; save value
	mov  r12, r1           ; save x
	divi r3, r11, 10
	call draw_digit        ; tens
	addi r1, r1, 4
	modi r3, r11, 10
	call draw_digit        ; ones
	mov  r1, r12
	mov  r3, r11
	ret

font3x5:
	.byte 7,5,5,5,7        ; 0
	.byte 2,6,2,2,7        ; 1
	.byte 7,1,7,4,7        ; 2
	.byte 7,1,7,1,7        ; 3
	.byte 5,5,7,1,1        ; 4
	.byte 7,4,7,1,7        ; 5
	.byte 7,4,7,5,7        ; 6
	.byte 7,1,2,2,2        ; 7
	.byte 7,5,7,5,7        ; 8
	.byte 7,5,7,1,7        ; 9
.align 4
`

// Meta describes one shipped game.
type Meta struct {
	Name  string
	Title string
	// Seed is the LFSR seed baked into the ROM header.
	Seed uint32
	// Build assembles a fresh ROM image.
	Build func() (*rom.ROM, error)
}

// Per-game LFSR seeds baked into the ROM headers (ASCII of the titles).
const (
	pongSeed     = 0x504F4E47 // "PONG"
	duelSeed     = 0x4455454C // "DUEL"
	tanksSeed    = 0x54414E4B // "TANK"
	cyclesSeed   = 0x4359434C // "CYCL"
	breakoutSeed = 0x42524B54 // "BRKT"
	goldrushSeed = 0x474F4C44 // "GOLD"
)

// catalog lists every shipped game by short name.
var catalog = map[string]Meta{
	"pong":     {Name: "pong", Title: "Pong Duel", Seed: pongSeed, Build: buildPong},
	"duel":     {Name: "duel", Title: "Street Brawler", Seed: duelSeed, Build: buildDuel},
	"tanks":    {Name: "tanks", Title: "Tank Battle", Seed: tanksSeed, Build: buildTanks},
	"cycles":   {Name: "cycles", Title: "Neon Cycles", Seed: cyclesSeed, Build: buildCycles},
	"breakout": {Name: "breakout", Title: "Brick Brigade", Seed: breakoutSeed, Build: buildBreakout},
	"goldrush": {Name: "goldrush", Title: "Gold Rush", Seed: goldrushSeed, Build: buildGoldrush},
}

// Names returns the shipped game names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load assembles the named game.
func Load(name string) (*rom.ROM, error) {
	meta, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("games: unknown game %q (have %v)", name, Names())
	}
	return meta.Build()
}

// MustLoad is Load for callers with a statically known name.
func MustLoad(name string) *rom.ROM {
	r, err := Load(name)
	if err != nil {
		panic(err)
	}
	return r
}

func buildPong() (*rom.ROM, error) {
	return rom.AssembleROM("Pong Duel", pongSrc+libSrc, pongSeed)
}

func buildDuel() (*rom.ROM, error) {
	return rom.AssembleROM("Street Brawler", duelSrc+libSrc, duelSeed)
}

func buildTanks() (*rom.ROM, error) {
	return rom.AssembleROM("Tank Battle", tanksSrc+libSrc, tanksSeed)
}

func buildCycles() (*rom.ROM, error) {
	return rom.AssembleROM("Neon Cycles", cyclesSrc+libSrc, cyclesSeed)
}

func buildBreakout() (*rom.ROM, error) {
	return rom.AssembleROM("Brick Brigade", breakoutSrc+libSrc, breakoutSeed)
}

func buildGoldrush() (*rom.ROM, error) {
	return rom.AssembleROM("Gold Rush", goldrushSrc+libSrc, goldrushSeed)
}
