package games

import (
	"testing"

	"retrolock/internal/vm"
)

const (
	grM0X     = 0x8480
	grM0Score = 0x8484
	grM1Score = 0x84A4
	grTimer   = 0x85C0
)

func TestGoldrushMinerMovesAndClamps(t *testing.T) {
	c := mustBoot(t, "goldrush")
	c.StepFrame(0)
	for i := 0; i < 80; i++ {
		c.StepFrame(pads(vm.BtnLeft, 0))
	}
	if got := c.Peek32(grM0X); got != 2 {
		t.Fatalf("miner 0 x = %d at the left clamp, want 2", got)
	}
	for i := 0; i < 120; i++ {
		c.StepFrame(pads(vm.BtnRight, 0))
	}
	if got := c.Peek32(grM0X); got != 118 {
		t.Fatalf("miner 0 x = %d at the right clamp, want 118", got)
	}
}

func TestGoldrushChasersCatchGold(t *testing.T) {
	// A crude chaser bot per miner: steer toward the lowest active
	// object. Over a minute they must catch something.
	c := mustBoot(t, "goldrush")
	lowestObjX := func() (int32, bool) {
		bestY := int32(-1)
		bestX := int32(-1)
		for i := 0; i < 6; i++ {
			base := uint16(0x8500 + 16*i)
			if c.Peek32(base) == 0 {
				continue
			}
			y := int32(c.Peek32(base + 8))
			if y > bestY {
				bestY = y
				bestX = int32(c.Peek32(base + 4))
			}
		}
		return bestX, bestX >= 0
	}
	for f := 0; f < 3000; f++ {
		var pad0 byte
		if x, ok := lowestObjX(); ok {
			m := int32(c.Peek32(grM0X))
			if x < m+2 {
				pad0 = vm.BtnLeft
			} else {
				pad0 = vm.BtnRight
			}
		}
		c.StepFrame(pads(pad0, 0))
		for _, e := range c.DebugLog() {
			if e.Code == 1 && e.Value >= 1 {
				return // miner 0 caught gold
			}
		}
	}
	t.Fatal("chaser bot never caught gold in 50 seconds")
}

func TestGoldrushRoundEndsAndResets(t *testing.T) {
	c := mustBoot(t, "goldrush")
	sawEnd := false
	for f := 0; f < 4000 && !sawEnd; f++ {
		c.StepFrame(0)
		for _, e := range c.DebugLog() {
			if e.Code == 3 || e.Code == 4 || e.Code == 7 {
				sawEnd = true
			}
		}
	}
	if !sawEnd {
		t.Fatal("no round-end event within 4000 frames (round is 3600)")
	}
	// The timer restarted.
	if timer := c.Peek32(grTimer); timer == 0 || timer > 3600 {
		t.Fatalf("timer = %d after reset, want (0, 3600]", timer)
	}
	if s0, s1 := c.Peek32(grM0Score), c.Peek32(grM1Score); s0 != 0 || s1 != 0 {
		t.Fatalf("scores %d/%d after reset, want 0/0", s0, s1)
	}
}
