package games

// Pong Duel: the classic. Player 0 owns the left paddle (Up/Down), player 1
// the right. First to five points wins the match, which then restarts.
//
// SYS debug codes (observable by tests and tools, invisible to players):
//
//	1: player 0 scored (value = new score)
//	2: player 1 scored (value = new score)
//	3: player 0 won the match
//	4: player 1 won the match
const pongSrc = `
; ---------------------------------------------------------------
; Pong Duel
; ---------------------------------------------------------------
.equ BALLX,  0x8000
.equ BALLY,  0x8004
.equ VELX,   0x8008
.equ VELY,   0x800C
.equ P0Y,    0x8010
.equ P1Y,    0x8014
.equ SCORE0, 0x8018
.equ SCORE1, 0x801C
.equ BEEP,   0x8020

.equ PADDLE_H,  16
.equ PADDLE_SP, 2
.equ MAXPY,     80      ; 96 - PADDLE_H
.equ BALLSZ,    3
.equ WIN_SCORE, 5

start:
	call reset_ball
	li   r1, 40
	li   r6, P0Y
	stw  r1, [r6]
	li   r6, P1Y
	stw  r1, [r6]

main_loop:
	call read_input
	call move_ball
	call draw
	call do_audio
	yield
	jmp  main_loop

; ---------------------------------------------------------------
reset_ball:
	li   r6, BALLX
	li   r7, 62
	stw  r7, [r6]
	li   r6, BALLY
	li   r7, 46
	stw  r7, [r6]
	rand r7
	andi r8, r7, 1
	li   r9, 2
	bne  r8, r0, rb_vx_done
	li   r9, -2
rb_vx_done:
	li   r6, VELX
	stw  r9, [r6]
	andi r8, r7, 2
	li   r9, 1
	bne  r8, r0, rb_vy_done
	li   r9, -1
rb_vy_done:
	li   r6, VELY
	stw  r9, [r6]
	ret

; ---------------------------------------------------------------
read_input:
	li   r6, PAD0
	ldb  r1, [r6]
	li   r6, P0Y
	call update_paddle
	li   r6, PAD0
	ldb  r1, [r6+1]
	li   r6, P1Y
	call update_paddle
	ret

; update_paddle: r1 = pad bits, r6 = address of paddle Y.
update_paddle:
	ldw  r7, [r6]
	andi r8, r1, 1          ; BtnUp
	beq  r8, r0, up_no_up
	addi r7, r7, -PADDLE_SP
	bge  r7, r0, up_no_up
	mov  r7, r0
up_no_up:
	andi r8, r1, 2          ; BtnDown
	beq  r8, r0, up_no_down
	addi r7, r7, PADDLE_SP
	li   r8, MAXPY
	blt  r7, r8, up_no_down
	mov  r7, r8
up_no_down:
	stw  r7, [r6]
	ret

; ---------------------------------------------------------------
move_ball:
	li   r6, BALLX
	ldw  r1, [r6]
	li   r6, BALLY
	ldw  r2, [r6]
	li   r6, VELX
	ldw  r3, [r6]
	li   r6, VELY
	ldw  r4, [r6]
	add  r1, r1, r3
	add  r2, r2, r4

	; bounce off the top
	bge  r2, r0, mb_no_top
	mov  r2, r0
	sub  r4, r0, r4
	call beep_on
mb_no_top:
	; bounce off the bottom (max y = 96 - BALLSZ = 93)
	li   r7, 93
	bge  r7, r2, mb_no_bot
	mov  r2, r7
	sub  r4, r0, r4
	call beep_on
mb_no_bot:

	; player 1 scores when the ball exits on the left
	bge  r1, r0, mb_no_s1
	li   r6, SCORE1
	ldw  r7, [r6]
	addi r7, r7, 1
	stw  r7, [r6]
	sys  r7, 2
	li   r8, WIN_SCORE
	bne  r7, r8, mb_s1_cont
	sys  r7, 4
	call reset_match
mb_s1_cont:
	call reset_ball
	jmp  mb_done
mb_no_s1:
	; player 0 scores when the ball exits on the right
	li   r7, 125
	bge  r7, r1, mb_no_s0
	li   r6, SCORE0
	ldw  r7, [r6]
	addi r7, r7, 1
	stw  r7, [r6]
	sys  r7, 1
	li   r8, WIN_SCORE
	bne  r7, r8, mb_s0_cont
	sys  r7, 3
	call reset_match
mb_s0_cont:
	call reset_ball
	jmp  mb_done
mb_no_s0:

	; left paddle deflects when moving left through x in [2,5]
	bge  r3, r0, mb_no_lpad
	li   r7, 5
	blt  r7, r1, mb_no_lpad
	li   r7, 2
	blt  r1, r7, mb_no_lpad
	li   r6, P0Y
	ldw  r7, [r6]
	addi r8, r2, BALLSZ
	blt  r8, r7, mb_no_lpad
	addi r7, r7, PADDLE_H
	blt  r7, r2, mb_no_lpad
	sub  r3, r0, r3
	li   r1, 6
	call beep_on
mb_no_lpad:
	; right paddle deflects when moving right through x in [120,123]
	bge  r0, r3, mb_no_rpad
	li   r7, 120
	blt  r1, r7, mb_no_rpad
	li   r7, 123
	blt  r7, r1, mb_no_rpad
	li   r6, P1Y
	ldw  r7, [r6]
	addi r8, r2, BALLSZ
	blt  r8, r7, mb_no_rpad
	addi r7, r7, PADDLE_H
	blt  r7, r2, mb_no_rpad
	sub  r3, r0, r3
	li   r1, 119
	call beep_on
mb_no_rpad:

	li   r6, BALLX
	stw  r1, [r6]
	li   r6, BALLY
	stw  r2, [r6]
	li   r6, VELX
	stw  r3, [r6]
	li   r6, VELY
	stw  r4, [r6]
mb_done:
	ret

reset_match:
	li   r8, SCORE0
	stw  r0, [r8]
	li   r8, SCORE1
	stw  r0, [r8]
	ret

beep_on:
	li   r8, BEEP
	li   r9, 4
	stw  r9, [r8]
	ret

; ---------------------------------------------------------------
draw:
	movi r1, 0
	call clear_screen

	; dashed center line
	li   r2, 4
dr_center:
	li   r1, 63
	li   r3, 1
	li   r4, 4
	li   r5, 12
	call fill_rect
	addi r2, r2, 12
	li   r7, 96
	blt  r2, r7, dr_center

	; paddles
	li   r1, 2
	li   r6, P0Y
	ldw  r2, [r6]
	li   r3, 3
	li   r4, PADDLE_H
	li   r5, 1
	call fill_rect
	li   r1, 123
	li   r6, P1Y
	ldw  r2, [r6]
	li   r3, 3
	li   r4, PADDLE_H
	li   r5, 1
	call fill_rect

	; ball
	li   r6, BALLX
	ldw  r1, [r6]
	li   r6, BALLY
	ldw  r2, [r6]
	li   r3, BALLSZ
	li   r4, BALLSZ
	li   r5, 7
	call fill_rect

	; score pips: player 0 grows from the left, player 1 from the right
	li   r6, SCORE0
	ldw  r10, [r6]
	li   r11, 4
dr_s0:
	beq  r10, r0, dr_s0_done
	mov  r1, r11
	li   r2, 2
	li   r3, 4
	li   r4, 3
	li   r5, 5
	call fill_rect
	addi r11, r11, 6
	addi r10, r10, -1
	jmp  dr_s0
dr_s0_done:
	li   r6, SCORE1
	ldw  r10, [r6]
	li   r11, 120
dr_s1:
	beq  r10, r0, dr_s1_done
	mov  r1, r11
	li   r2, 2
	li   r3, 4
	li   r4, 3
	li   r5, 10
	call fill_rect
	addi r11, r11, -6
	addi r10, r10, -1
	jmp  dr_s1
dr_s1_done:
	ret

; ---------------------------------------------------------------
do_audio:
	li   r6, BEEP
	ldw  r7, [r6]
	beq  r7, r0, da_off
	addi r7, r7, -1
	stw  r7, [r6]
	li   r1, 36
	li   r2, 180
	call tone
	ret
da_off:
	mov  r1, r0
	mov  r2, r0
	call tone
	ret
`
