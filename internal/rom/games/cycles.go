package games

// Neon Cycles: Tron-style light cycles. Each bike moves continuously and
// leaves a solid trail; steering into any lit pixel — wall, either trail —
// crashes the bike and gives the opponent a point. Five points win the
// match. The playfield doubles as the collision structure: the game reads
// VRAM to detect crashes, so rendering and game state are one.
//
// SYS debug codes:
//
//	1: player 0 scored (value = new score)
//	2: player 1 scored (value = new score)
//	3: player 0 won the match
//	4: player 1 won the match
//	7: simultaneous crash, no score (value = round number)
const cyclesSrc = `
; ---------------------------------------------------------------
; Neon Cycles
; ---------------------------------------------------------------
; bike struct offsets
.equ CX,    0
.equ CY,    4
.equ CDIR,  8         ; 0 up, 1 down, 2 left, 3 right
.equ CSCORE, 12
.equ CPAD,  16

.equ B0,    0x8300
.equ B1,    0x8340
.equ FREEZE, 0x8380   ; frames to hold after a crash
.equ ROUND,  0x8384
.equ CRASH,  0x8388   ; audio trigger

.equ TOP,    8        ; playfield starts below the HUD strip
.equ WIN_SCORE, 5

start:
	call new_round

main_loop:
	li   r6, PAD0
	ldb  r7, [r6]
	li   r6, B0
	stw  r7, [r6+CPAD]
	li   r6, PAD0
	ldb  r7, [r6+1]
	li   r6, B1
	stw  r7, [r6+CPAD]

	; frozen after a crash? count down, then start the next round
	li   r6, FREEZE
	ldw  r7, [r6]
	beq  r7, r0, cl_live
	addi r7, r7, -1
	stw  r7, [r6]
	bne  r7, r0, cl_hud
	call new_round
	jmp  cl_hud
cl_live:

	; steer both bikes (reversals ignored)
	li   r12, B0
	call steer
	li   r12, B1
	call steer

	; advance both heads and test the pixels in front
	li   r12, B0
	call probe          ; r1 = crashed?
	mov  r10, r1
	li   r12, B1
	call probe
	mov  r11, r1

	; resolve
	beq  r10, r0, cl_b0_ok
	beq  r11, r0, cl_b1_scores_check
	; both crashed: draw, no score
	li   r6, ROUND
	ldw  r7, [r6]
	sys  r7, 7
	call crash_freeze
	jmp  cl_hud
cl_b1_scores_check:
	; only bike 0 crashed: bike 1 scores
	li   r12, B1
	li   r9, 2
	call award
	jmp  cl_hud
cl_b0_ok:
	beq  r11, r0, cl_move
	; only bike 1 crashed: bike 0 scores
	li   r12, B0
	li   r9, 1
	call award
	jmp  cl_hud
cl_move:
	; no crash against the current field: bike 0 commits first, then
	; bike 1 re-probes so that both bikes steering into the same pixel
	; resolves as a crash for bike 1 instead of a pass-through.
	li   r12, B0
	li   r5, 14           ; blue trail
	call advance
	li   r12, B1
	call probe
	beq  r1, r0, cl_b1_go
	li   r12, B0
	li   r9, 1
	call award
	jmp  cl_hud
cl_b1_go:
	li   r12, B1
	li   r5, 8            ; orange trail
	call advance

cl_hud:
	call draw_hud
	call do_audio
	yield
	jmp  main_loop

; ---------------------------------------------------------------
; steer: apply r12's pad to CDIR; reversals are ignored.
steer:
	ldw  r7, [r12+CPAD]
	ldw  r8, [r12+CDIR]
	andi r9, r7, 1
	beq  r9, r0, st_no_up
	li   r6, 1
	beq  r8, r6, st_done   ; moving down: can't reverse to up
	stw  r0, [r12+CDIR]
	ret
st_no_up:
	andi r9, r7, 2
	beq  r9, r0, st_no_down
	bne  r8, r0, st_down_ok ; moving up: can't reverse to down
	ret
st_down_ok:
	li   r6, 1
	stw  r6, [r12+CDIR]
	ret
st_no_down:
	andi r9, r7, 4
	beq  r9, r0, st_no_left
	li   r6, 3
	beq  r8, r6, st_done   ; moving right: can't reverse to left
	li   r6, 2
	stw  r6, [r12+CDIR]
	ret
st_no_left:
	andi r9, r7, 8
	beq  r9, r0, st_done
	li   r6, 2
	beq  r8, r6, st_done   ; moving left: can't reverse to right
	li   r6, 3
	stw  r6, [r12+CDIR]
st_done:
	ret

; probe: compute r12's next head position; r1 = 1 when the target pixel is
; lit (crash). Leaves the new position in r2 (x) and r3 (y).
probe:
	ldw  r2, [r12+CX]
	ldw  r3, [r12+CY]
	ldw  r7, [r12+CDIR]
	shli r8, r7, 2
	li   r6, cdir_dx
	add  r6, r6, r8
	ldw  r9, [r6]
	add  r2, r2, r9
	li   r6, cdir_dy
	add  r6, r6, r8
	ldw  r9, [r6]
	add  r3, r3, r9
	; read the target pixel
	shli r7, r3, 7
	add  r7, r7, r2
	li   r8, VRAM
	add  r7, r7, r8
	ldb  r1, [r7]
	beq  r1, r0, pr_clear
	li   r1, 1
	ret
pr_clear:
	mov  r1, r0
	ret

; advance: commit the move computed by probe (r2/r3 still valid is NOT
; guaranteed across calls, so recompute) and draw the head in color r5.
advance:
	call probe            ; recomputes r2/r3; target known clear
	stw  r2, [r12+CX]
	stw  r3, [r12+CY]
	shli r7, r3, 7
	add  r7, r7, r2
	li   r8, VRAM
	add  r7, r7, r8
	stb  r5, [r7]
	ret

; award: r12 = surviving bike, r9 = SYS code (1 or 2).
award:
	ldw  r7, [r12+CSCORE]
	addi r7, r7, 1
	stw  r7, [r12+CSCORE]
	li   r8, 1
	beq  r9, r8, aw_p0
	sys  r7, 2
	jmp  aw_match
aw_p0:
	sys  r7, 1
aw_match:
	li   r8, WIN_SCORE
	bne  r7, r8, aw_freeze
	; match over (SYS codes are immediates, so branch per winner)
	li   r6, 1
	beq  r9, r6, aw_sys_p0
	sys  r7, 4
	jmp  aw_reset_scores
aw_sys_p0:
	sys  r7, 3
aw_reset_scores:
	li   r6, B0
	stw  r0, [r6+CSCORE]
	li   r6, B1
	stw  r0, [r6+CSCORE]
aw_freeze:
	call crash_freeze
	ret

crash_freeze:
	li   r6, FREEZE
	li   r7, 45            ; ~0.75 s pause
	stw  r7, [r6]
	li   r6, CRASH
	li   r7, 8
	stw  r7, [r6]
	li   r6, ROUND
	ldw  r7, [r6]
	addi r7, r7, 1
	stw  r7, [r6]
	ret

; ---------------------------------------------------------------
new_round:
	; clear the playfield (not the HUD strip)
	li   r1, 0
	li   r2, TOP
	li   r3, 128
	li   r4, 96-TOP
	li   r5, 0
	call fill_rect
	; arena border
	li   r1, 0
	li   r2, TOP
	li   r3, 128
	li   r4, 1
	li   r5, 12
	call fill_rect
	li   r1, 0
	li   r2, 95
	li   r3, 128
	li   r4, 1
	li   r5, 12
	call fill_rect
	li   r1, 0
	li   r2, TOP
	li   r3, 1
	li   r4, 96-TOP
	li   r5, 12
	call fill_rect
	li   r1, 127
	li   r2, TOP
	li   r3, 1
	li   r4, 96-TOP
	li   r5, 12
	call fill_rect
	; spawn bikes facing each other
	li   r6, B0
	li   r7, 20
	stw  r7, [r6+CX]
	li   r7, 51
	stw  r7, [r6+CY]
	li   r7, 3
	stw  r7, [r6+CDIR]
	li   r6, B1
	li   r7, 107
	stw  r7, [r6+CX]
	li   r7, 51
	stw  r7, [r6+CY]
	li   r7, 2
	stw  r7, [r6+CDIR]
	; draw the initial heads
	li   r12, B0
	li   r5, 14
	call draw_head
	li   r12, B1
	li   r5, 8
	call draw_head
	ret

draw_head:
	ldw  r2, [r12+CX]
	ldw  r3, [r12+CY]
	shli r7, r3, 7
	add  r7, r7, r2
	li   r8, VRAM
	add  r7, r7, r8
	stb  r5, [r7]
	ret

; ---------------------------------------------------------------
draw_hud:
	; clear the strip, then scores as digits
	li   r1, 0
	li   r2, 0
	li   r3, 128
	li   r4, TOP
	li   r5, 0
	call fill_rect
	li   r6, B0
	ldw  r3, [r6+CSCORE]
	li   r1, 4
	li   r2, 1
	li   r4, 14
	call draw_digit
	li   r6, B1
	ldw  r3, [r6+CSCORE]
	li   r1, 121
	li   r2, 1
	li   r4, 8
	call draw_digit
	ret

; ---------------------------------------------------------------
do_audio:
	li   r6, CRASH
	ldw  r7, [r6]
	beq  r7, r0, da4_off
	addi r7, r7, -1
	stw  r7, [r6]
	li   r1, 2
	li   r2, 255
	call tone
	ret
da4_off:
	mov  r1, r0
	mov  r2, r0
	call tone
	ret

; direction vectors indexed by CDIR
.align 4
cdir_dx:
	.word 0, 0, -1, 1
cdir_dy:
	.word -1, 1, 0, 0
`
