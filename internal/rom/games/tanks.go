package games

// Tank Battle: two tanks in a walled arena. Steer with the d-pad (the tank
// faces the way it moves), fire with A (one shell in flight per tank).
// Shells stop at walls; hitting the other tank scores a point and resets
// positions. Five points win the match.
//
// SYS debug codes:
//
//	1: player 0 scored (value = new score)
//	2: player 1 scored (value = new score)
//	3: player 0 won the match
//	4: player 1 won the match
const tanksSrc = `
; ---------------------------------------------------------------
; Tank Battle
; ---------------------------------------------------------------
; tank struct offsets
.equ TX,    0         ; x (top-left of 8x8 body)
.equ TY,    4
.equ TDIR,  8         ; 0 up, 1 down, 2 left, 3 right
.equ TSCORE, 12
.equ TBACT, 16        ; shell active flag
.equ TBX,   20
.equ TBY,   24
.equ TBDX,  28
.equ TBDY,  32
.equ TPAD,  36

.equ T0,    0x8200
.equ T1,    0x8240
.equ BOOM,  0x8280

.equ TANK_SZ,  8
.equ SHELL_SZ, 2
.equ SHELL_SP, 3
.equ WIN_SCORE, 5

start:
	call reset_field
	li   r6, T0
	stw  r0, [r6+TSCORE]
	li   r6, T1
	stw  r0, [r6+TSCORE]

main_loop:
	li   r6, PAD0
	ldb  r7, [r6]
	li   r6, T0
	stw  r7, [r6+TPAD]
	li   r6, PAD0
	ldb  r7, [r6+1]
	li   r6, T1
	stw  r7, [r6+TPAD]

	li   r12, T0
	li   r13, T1
	call tank_update
	li   r12, T1
	li   r13, T0
	call tank_update

	li   r12, T0
	li   r13, T1
	call shell_update
	li   r12, T1
	li   r13, T0
	call shell_update

	call draw
	call do_audio
	yield
	jmp  main_loop

; ---------------------------------------------------------------
; tank_update: r12 = my base, r13 = opponent base.
tank_update:
	ldw  r1, [r12+TX]
	ldw  r2, [r12+TY]
	; pick a movement direction (priority up, down, left, right)
	ldw  r14, [r12+TPAD]
	andi r8, r14, 1
	bne  r8, r0, tu_up
	andi r8, r14, 2
	bne  r8, r0, tu_down
	andi r8, r14, 4
	bne  r8, r0, tu_left
	andi r8, r14, 8
	bne  r8, r0, tu_right
	jmp  tu_fire
tu_up:
	addi r2, r2, -1
	stw  r0, [r12+TDIR]
	jmp  tu_try
tu_down:
	addi r2, r2, 1
	li   r8, 1
	stw  r8, [r12+TDIR]
	jmp  tu_try
tu_left:
	addi r1, r1, -1
	li   r8, 2
	stw  r8, [r12+TDIR]
	jmp  tu_try
tu_right:
	addi r1, r1, 1
	li   r8, 3
	stw  r8, [r12+TDIR]
tu_try:
	; collide with walls?
	push r1
	push r2
	li   r3, TANK_SZ
	li   r4, TANK_SZ
	call rect_hits_walls
	mov  r9, r1
	pop  r2
	pop  r1
	bne  r9, r0, tu_fire       ; blocked: stay put
	; collide with the other tank?
	ldw  r5, [r13+TX]
	ldw  r6, [r13+TY]
	; overlap if |dx| < 8 and |dy| < 8
	sub  r7, r5, r1
	bge  r7, r0, tu_dx_ok
	sub  r7, r0, r7
tu_dx_ok:
	li   r8, TANK_SZ
	bge  r7, r8, tu_commit
	sub  r7, r6, r2
	bge  r7, r0, tu_dy_ok
	sub  r7, r0, r7
tu_dy_ok:
	bge  r7, r8, tu_commit
	jmp  tu_fire               ; would overlap the other tank: blocked
tu_commit:
	stw  r1, [r12+TX]
	stw  r2, [r12+TY]

tu_fire:
	ldw  r8, [r12+TPAD]
	andi r8, r8, 16            ; A
	beq  r8, r0, tu_done
	ldw  r8, [r12+TBACT]
	bne  r8, r0, tu_done       ; one shell at a time
	; spawn at the barrel
	ldw  r1, [r12+TX]
	ldw  r2, [r12+TY]
	addi r1, r1, 3
	addi r2, r2, 3
	ldw  r7, [r12+TDIR]
	li   r6, dir_dx
	shli r8, r7, 2
	add  r6, r6, r8
	ldw  r3, [r6]              ; dx
	li   r6, dir_dy
	add  r6, r6, r8
	ldw  r4, [r6]              ; dy
	; step the muzzle out of the tank body
	muli r8, r3, 6
	add  r1, r1, r8
	muli r8, r4, 6
	add  r2, r2, r8
	muli r3, r3, SHELL_SP
	muli r4, r4, SHELL_SP
	li   r8, 1
	stw  r8, [r12+TBACT]
	stw  r1, [r12+TBX]
	stw  r2, [r12+TBY]
	stw  r3, [r12+TBDX]
	stw  r4, [r12+TBDY]
tu_done:
	ret

; ---------------------------------------------------------------
; shell_update: r12 = shooter base, r13 = target base.
shell_update:
	ldw  r8, [r12+TBACT]
	beq  r8, r0, su_done
	ldw  r1, [r12+TBX]
	ldw  r2, [r12+TBY]
	ldw  r3, [r12+TBDX]
	ldw  r4, [r12+TBDY]
	add  r1, r1, r3
	add  r2, r2, r4
	stw  r1, [r12+TBX]
	stw  r2, [r12+TBY]
	; out of the arena? (a shell fired from a wall-hugging tank can spawn
	; outside the border walls and would otherwise fly off into memory)
	blt  r1, r0, su_kill
	li   r8, 125
	blt  r8, r1, su_kill
	blt  r2, r0, su_kill
	li   r8, 93
	blt  r8, r2, su_kill
	; wall hit?
	push r1
	push r2
	li   r3, SHELL_SZ
	li   r4, SHELL_SZ
	call rect_hits_walls
	mov  r9, r1
	pop  r2
	pop  r1
	beq  r9, r0, su_tank_check
su_kill:
	stw  r0, [r12+TBACT]
	ret
su_tank_check:
	; target hit? overlap of shell (2x2) and tank (8x8)
	ldw  r5, [r13+TX]
	ldw  r6, [r13+TY]
	add  r7, r5, r0
	addi r7, r7, TANK_SZ       ; tx+8
	bge  r1, r7, su_done       ; sx >= tx+8: miss
	addi r7, r1, SHELL_SZ
	bge  r5, r7, su_done       ; tx >= sx+2
	addi r7, r6, TANK_SZ
	bge  r2, r7, su_done
	addi r7, r2, SHELL_SZ
	bge  r6, r7, su_done
	; hit!
	stw  r0, [r12+TBACT]
	ldw  r7, [r12+TSCORE]
	addi r7, r7, 1
	stw  r7, [r12+TSCORE]
	li   r8, BOOM
	li   r9, 5
	stw  r9, [r8]
	; which tank scored? log 1 for T0, 2 for T1
	li   r8, T0
	bne  r12, r8, su_t1_scored
	sys  r7, 1
	jmp  su_match
su_t1_scored:
	sys  r7, 2
su_match:
	li   r8, WIN_SCORE
	bne  r7, r8, su_reset
	li   r8, T0
	bne  r12, r8, su_t1_match
	sys  r7, 3
	jmp  su_match_reset
su_t1_match:
	sys  r7, 4
su_match_reset:
	li   r6, T0
	stw  r0, [r6+TSCORE]
	li   r6, T1
	stw  r0, [r6+TSCORE]
su_reset:
	call reset_field
su_done:
	ret

; ---------------------------------------------------------------
reset_field:
	li   r6, T0
	li   r7, 10
	stw  r7, [r6+TX]
	li   r7, 44
	stw  r7, [r6+TY]
	li   r7, 3                 ; facing right
	stw  r7, [r6+TDIR]
	stw  r0, [r6+TBACT]
	li   r6, T1
	li   r7, 110
	stw  r7, [r6+TX]
	li   r7, 44
	stw  r7, [r6+TY]
	li   r7, 2                 ; facing left
	stw  r7, [r6+TDIR]
	stw  r0, [r6+TBACT]
	ret

; ---------------------------------------------------------------
; rect_hits_walls: r1=x r2=y r3=w r4=h -> r1 = 1 when overlapping any wall.
; Clobbers r5-r9.
rect_hits_walls:
	li   r5, walls
	ldw  r6, [r5]              ; count
	addi r5, r5, 4
rw_loop:
	beq  r6, r0, rw_none
	ldw  r7, [r5]              ; wx
	ldw  r8, [r5+8]            ; ww
	add  r8, r7, r8
	bge  r1, r8, rw_next       ; x >= wx+ww
	add  r8, r1, r3
	bge  r7, r8, rw_next       ; wx >= x+w
	ldw  r7, [r5+4]            ; wy
	ldw  r8, [r5+12]           ; wh
	add  r8, r7, r8
	bge  r2, r8, rw_next       ; y >= wy+wh
	ldw  r7, [r5+4]
	add  r8, r2, r4
	bge  r7, r8, rw_next       ; wy >= y+h
	li   r1, 1
	ret
rw_next:
	addi r5, r5, 16
	addi r6, r6, -1
	jmp  rw_loop
rw_none:
	mov  r1, r0
	ret

; ---------------------------------------------------------------
draw:
	movi r1, 0
	call clear_screen

	; walls
	li   r10, walls
	ldw  r11, [r10]
	addi r10, r10, 4
dr_walls:
	beq  r11, r0, dr_walls_done
	ldw  r1, [r10]
	ldw  r2, [r10+4]
	ldw  r3, [r10+8]
	ldw  r4, [r10+12]
	li   r5, 12
	call fill_rect
	addi r10, r10, 16
	addi r11, r11, -1
	jmp  dr_walls
dr_walls_done:

	li   r12, T0
	li   r5, 5                 ; green tank
	call draw_tank
	li   r12, T1
	li   r5, 8                 ; orange tank
	call draw_tank

	; score pips
	li   r6, T0
	ldw  r10, [r6+TSCORE]
	li   r11, 6
dr_ts0:
	beq  r10, r0, dr_ts0_done
	mov  r1, r11
	li   r2, 3
	li   r3, 3
	li   r4, 2
	li   r5, 5
	call fill_rect
	addi r11, r11, 5
	addi r10, r10, -1
	jmp  dr_ts0
dr_ts0_done:
	li   r6, T1
	ldw  r10, [r6+TSCORE]
	li   r11, 119
dr_ts1:
	beq  r10, r0, dr_ts1_done
	mov  r1, r11
	li   r2, 3
	li   r3, 3
	li   r4, 2
	li   r5, 8
	call fill_rect
	addi r11, r11, -5
	addi r10, r10, -1
	jmp  dr_ts1
dr_ts1_done:
	ret

; draw_tank: r12 = base, r5 = color. Body, barrel pixel, and shell.
draw_tank:
	ldw  r1, [r12+TX]
	ldw  r2, [r12+TY]
	li   r3, TANK_SZ
	li   r4, TANK_SZ
	call fill_rect
	; barrel: 2x2 block just outside the body, toward TDIR
	ldw  r7, [r12+TDIR]
	shli r8, r7, 2
	li   r6, dir_dx
	add  r6, r6, r8
	ldw  r9, [r6]              ; dx
	li   r6, dir_dy
	add  r6, r6, r8
	ldw  r6, [r6]              ; dy
	ldw  r1, [r12+TX]
	ldw  r2, [r12+TY]
	addi r1, r1, 3
	addi r2, r2, 3
	muli r9, r9, 5
	add  r1, r1, r9
	muli r6, r6, 5
	add  r2, r2, r6
	li   r3, 2
	li   r4, 2
	li   r5, 15
	call fill_rect
	; shell
	ldw  r8, [r12+TBACT]
	beq  r8, r0, dt_done
	ldw  r1, [r12+TBX]
	ldw  r2, [r12+TBY]
	li   r3, SHELL_SZ
	li   r4, SHELL_SZ
	li   r5, 7
	call fill_rect
dt_done:
	ret

; ---------------------------------------------------------------
do_audio:
	li   r6, BOOM
	ldw  r7, [r6]
	beq  r7, r0, da3_off
	addi r7, r7, -1
	stw  r7, [r6]
	li   r1, 3                 ; low boom
	li   r2, 255
	call tone
	ret
da3_off:
	mov  r1, r0
	mov  r2, r0
	call tone
	ret

; ---------------------------------------------------------------
.align 4
walls:
	.word 7                    ; count
	.word 0,   0,   128, 2     ; top border
	.word 0,   94,  128, 2     ; bottom border
	.word 0,   0,   2,   96    ; left border
	.word 126, 0,   2,   96    ; right border
	.word 30,  20,  8,   24    ; obstacles
	.word 90,  52,  8,   24
	.word 56,  40,  16,  16

; direction vectors indexed by TDIR (up, down, left, right)
dir_dx:
	.word 0, 0, -1, 1
dir_dy:
	.word -1, 1, 0, 0
`
