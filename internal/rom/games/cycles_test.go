package games

import (
	"testing"

	"retrolock/internal/vm"
)

const (
	cyclesB0X    = 0x8300
	cyclesB0Dir  = 0x8300 + 8
	cyclesFreeze = 0x8380
)

func TestCyclesIdleHeadOnIsAlwaysADraw(t *testing.T) {
	// Idle players drive straight at each other; the spawn gap is odd, so
	// the bikes end up adjacent and both crash on the same frame — a draw
	// (SYS 7), every round, with no score.
	c := mustBoot(t, "cycles")
	draws := 0
	for f := 0; f < 800; f++ {
		c.StepFrame(0)
	}
	for _, e := range c.DebugLog() {
		switch e.Code {
		case 7:
			draws++
		case 1, 2:
			t.Fatalf("idle head-on produced a score (code %d); want symmetric draws", e.Code)
		}
	}
	if draws < 2 {
		t.Fatalf("saw %d draws in 800 idle frames, want several repeating rounds", draws)
	}
}

func TestCyclesSuicideRunsEndTheMatch(t *testing.T) {
	// Player 0 permanently steers up, driving into the top wall every
	// round; player 1 collects five points and the match.
	c := mustBoot(t, "cycles")
	sawScore := false
	sawMatch := false
	for f := 0; f < 1500 && !sawMatch; f++ {
		c.StepFrame(pads(vm.BtnUp, 0))
		for _, e := range c.DebugLog() {
			switch e.Code {
			case 2:
				sawScore = true
			case 4:
				sawMatch = true
			case 1, 3:
				t.Fatalf("player 0 scored (code %d) while driving into walls", e.Code)
			}
		}
	}
	if !sawScore {
		t.Fatal("player 1 never scored off player 0's wall crashes")
	}
	if !sawMatch {
		t.Fatal("player 1 never won the match in 1500 frames")
	}
}

func TestCyclesSteeringAndWallCrash(t *testing.T) {
	c := mustBoot(t, "cycles")
	c.StepFrame(0)
	// Steer bike 0 up: direction becomes 0 and it climbs to the border.
	c.StepFrame(pads(vm.BtnUp, 0))
	if got := c.Peek32(cyclesB0Dir); got != 0 {
		t.Fatalf("bike 0 dir = %d after Up, want 0", got)
	}
	for f := 0; f < 60; f++ {
		c.StepFrame(pads(vm.BtnUp, 0))
	}
	// The bike crashed into the top wall: player 1 scored.
	p1Scored := false
	for _, e := range c.DebugLog() {
		if e.Code == 2 {
			p1Scored = true
		}
	}
	if !p1Scored {
		t.Fatal("driving bike 0 into the wall did not score for player 1")
	}
	if c.Peek32(cyclesFreeze) == 0 {
		t.Log("freeze already elapsed (acceptable)")
	}
}

func TestCyclesReversalIgnored(t *testing.T) {
	c := mustBoot(t, "cycles")
	c.StepFrame(0)
	// Bike 0 starts moving right (dir 3); pressing Left must not reverse.
	c.StepFrame(pads(vm.BtnLeft, 0))
	if got := c.Peek32(cyclesB0Dir); got != 3 {
		t.Fatalf("bike 0 dir = %d after illegal reversal, want 3", got)
	}
	// It keeps moving right.
	x1 := c.Peek32(cyclesB0X)
	c.StepFrame(pads(vm.BtnLeft, 0))
	if got := c.Peek32(cyclesB0X); got <= x1 {
		t.Fatalf("bike 0 x went %d -> %d; reversal not ignored", x1, got)
	}
}

func TestCyclesTrailsPersist(t *testing.T) {
	c := mustBoot(t, "cycles")
	for f := 0; f < 20; f++ {
		c.StepFrame(0)
	}
	// Bike 0 spawned at (20,51) heading right: its trail must be lit.
	lit := 0
	for x := 20; x < 30; x++ {
		if c.Pixel(x, 51) != 0 {
			lit++
		}
	}
	if lit < 8 {
		t.Fatalf("only %d trail pixels lit behind bike 0, want >= 8", lit)
	}
}
