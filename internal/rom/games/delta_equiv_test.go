package games

import (
	"bytes"
	"testing"

	"retrolock/internal/vm"
)

// TestDeltaRestoreMatchesFullRestore replays every shipped ROM under the
// golden synthetic players while maintaining a base+dirty-page-delta chain,
// and checks the incremental captures against ground truth at each
// checkpoint:
//
//   - the materialized image (base patched with every delta so far) is
//     byte-identical to a full Save taken at the same frame, and
//   - a console restored from the materialized image is indistinguishable —
//     same state hash, and identical behavior when both consoles play on.
//
// This is the end-to-end guarantee behind the flight recorder's delta ring:
// restoring from base+deltas can never diverge from restoring a full-RAM
// savestate.
func TestDeltaRestoreMatchesFullRestore(t *testing.T) {
	const (
		frames     = 1200
		checkEvery = 150
	)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c := mustBoot(t, name)
			image := c.AppendSaveBase(nil)
			for f := 0; f < frames; f++ {
				in := goldenInput(goldenSeed, 0, f) | goldenInput(goldenSeed, 1, f)
				c.StepFrame(in)
				if (f+1)%checkEvery != 0 {
					continue
				}
				if err := vm.ApplyDeltaToImage(image, c.AppendSaveDelta(nil)); err != nil {
					t.Fatalf("frame %d: apply delta: %v", f+1, err)
				}
				full := c.Save()
				if !bytes.Equal(image, full) {
					t.Fatalf("frame %d: base+deltas differ from the full savestate", f+1)
				}
				restored := mustBoot(t, name)
				if err := restored.Restore(image); err != nil {
					t.Fatalf("frame %d: restore: %v", f+1, err)
				}
				if restored.StateHash() != c.StateHash() {
					t.Fatalf("frame %d: restored hash %016x != live hash %016x",
						f+1, restored.StateHash(), c.StateHash())
				}
				// Both consoles must agree on the future, not just the present.
				probe := goldenInput(goldenSeed, 0, f+1) | goldenInput(goldenSeed, 1, f+1)
				restored.StepFrame(probe)
				peek, err := vm.New(vm.Params{})
				if err != nil {
					t.Fatal(err)
				}
				if err := peek.Restore(full); err != nil {
					t.Fatal(err)
				}
				peek.StepFrame(probe)
				if restored.StateHash() != peek.StateHash() {
					t.Fatalf("frame %d: replicas diverged one frame after restore", f+1)
				}
			}
		})
	}
}
