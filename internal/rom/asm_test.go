package rom

import (
	"strings"
	"testing"

	"retrolock/internal/vm"
)

func mustAssemble(t *testing.T, src string) *Assembly {
	t.Helper()
	a, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return a
}

func decodeAt(code []byte, off int) vm.Instr {
	return vm.Decode(code[off], code[off+1], code[off+2], code[off+3])
}

func TestAssembleBasicInstruction(t *testing.T) {
	a := mustAssemble(t, "movi r1, 42")
	if len(a.Code) != 4 {
		t.Fatalf("code = %d bytes, want 4", len(a.Code))
	}
	in := decodeAt(a.Code, 0)
	if in.Op != vm.OpMOVI || in.Rd != 1 || in.Imm != 42 {
		t.Errorf("decoded %+v", in)
	}
}

func TestAssembleAllOperandForms(t *testing.T) {
	src := `
start:
	nop
	movi r1, 0x10
	mov r2, r1
	add r3, r1, r2
	addi r3, r3, -5
	ldb r4, [r1+2]
	stw r4, [sp-4]
	ldw r5, [r1]
	jmp start
	jr r5
	call start
	ret
	beq r1, r2, start
	push r6
	pop r7
	rand r8
	sys r1, 3
	halt
	yield
`
	a := mustAssemble(t, src)
	wantOps := []byte{
		vm.OpNOP, vm.OpMOVI, vm.OpMOV, vm.OpADD, vm.OpADDI, vm.OpLDB,
		vm.OpSTW, vm.OpLDW, vm.OpJMP, vm.OpJR, vm.OpCALL, vm.OpRET,
		vm.OpBEQ, vm.OpPUSH, vm.OpPOP, vm.OpRAND, vm.OpSYS, vm.OpHALT, vm.OpYIELD,
	}
	if len(a.Code) != len(wantOps)*4 {
		t.Fatalf("code = %d bytes, want %d", len(a.Code), len(wantOps)*4)
	}
	for i, op := range wantOps {
		if got := a.Code[i*4]; got != op {
			t.Errorf("instr %d opcode %#x, want %#x", i, got, op)
		}
	}
	// Spot-check operands.
	sub := decodeAt(a.Code, 4*4) // addi r3, r3, -5
	if sub.Rd != 3 || sub.Ra != 3 || sub.SImm() != -5 {
		t.Errorf("addi decoded %+v", sub)
	}
	stw := decodeAt(a.Code, 6*4) // stw r4, [sp-4]
	if stw.Rd != 4 || stw.Ra != vm.RegSP || stw.SImm() != -4 {
		t.Errorf("stw decoded %+v", stw)
	}
}

func TestForwardLabelReference(t *testing.T) {
	a := mustAssemble(t, `
	jmp done
	nop
done:
	halt
`)
	jmp := decodeAt(a.Code, 0)
	if jmp.Imm != 8 {
		t.Errorf("jmp target = %d, want 8 (forward label)", jmp.Imm)
	}
}

func TestEquAndExpressions(t *testing.T) {
	a := mustAssemble(t, `
.equ BASE, 0x1000
.equ SIZE, 4*8
	movi r1, BASE+SIZE
	movi r2, (BASE-0x100)/2
	movi r3, 'A'
	movi r4, SIZE-40
`)
	want := []struct {
		reg byte
		imm int32
	}{
		{1, 0x1020}, {2, 0x780}, {3, 65}, {4, -8},
	}
	for i, w := range want {
		in := decodeAt(a.Code, i*4)
		if in.Rd != w.reg || in.SImm() != w.imm {
			t.Errorf("instr %d: %+v, want rd=%d imm=%d", i, in, w.reg, w.imm)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	a := mustAssemble(t, `
	.byte 1, 2, 0xFF
	.half 0x1234
	.word 0xDEADBEEF
	.space 3, 7
	.ascii "hi\n"
	.align 4
tail:
	nop
`)
	want := []byte{
		1, 2, 0xFF,
		0x34, 0x12,
		0xEF, 0xBE, 0xAD, 0xDE,
		7, 7, 7,
		'h', 'i', '\n',
		0, // align pad to 16
	}
	if len(a.Code) < len(want) {
		t.Fatalf("code too short: %d", len(a.Code))
	}
	for i, b := range want {
		if a.Code[i] != b {
			t.Errorf("byte %d = %#x, want %#x", i, a.Code[i], b)
		}
	}
	if a.Symbols["tail"] != 16 {
		t.Errorf("tail = %d, want 16 (aligned)", a.Symbols["tail"])
	}
}

func TestOrgPadsForward(t *testing.T) {
	a := mustAssemble(t, `
	nop
.org 0x20
here:
	halt
`)
	if a.Symbols["here"] != 0x20 {
		t.Errorf("here = %#x, want 0x20", a.Symbols["here"])
	}
	if len(a.Code) != 0x24 {
		t.Errorf("code = %d bytes, want 0x24", len(a.Code))
	}
	if a.Code[0x20] != vm.OpHALT {
		t.Errorf("byte at 0x20 = %#x, want HALT", a.Code[0x20])
	}
}

func TestLIPseudoInstruction(t *testing.T) {
	a := mustAssemble(t, `
	li r1, 0x12345678
	li r2, -1
	li r3, 100
after:
`)
	if a.Symbols["after"] != 24 {
		t.Fatalf("li must be fixed 8 bytes; after = %d, want 24", a.Symbols["after"])
	}
	// Execute to verify semantics.
	src := a.Code
	c, err := vm.New(vm.Params{Code: append(src, vm.Instr{Op: vm.OpYIELD}.Encode()[0]), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.StepFrame(0)
	if c.Reg(1) != 0x12345678 {
		t.Errorf("r1 = %#x, want 0x12345678", c.Reg(1))
	}
	if c.Reg(2) != 0xFFFFFFFF {
		t.Errorf("r2 = %#x, want -1", c.Reg(2))
	}
	if c.Reg(3) != 100 {
		t.Errorf("r3 = %d, want 100", c.Reg(3))
	}
}

func TestErrorReporting(t *testing.T) {
	cases := map[string]string{
		"bogus r1":           "unknown mnemonic",
		"movi r99, 1":        "bad register",
		"movi r1, 99999":     "does not fit",
		"movi r1":            "needs 2 operand",
		".equ 9bad, 1":       ".equ needs",
		".org 0x10\n.org 0":  "moves backward",
		"movi r1, undef_sym": "undefined symbol",
		"movi r1, (1+2":      "missing ')'",
		"movi r1, 1+2)":      "trailing junk",
		"dup:\ndup:":         "duplicate symbol",
		".space -1":          "negative",
		"ldb r1, r2":         "bad memory operand",
		".align 0":           "positive",
		"movi r1, 5/0":       "division by zero",
		".ascii unquoted":    "quoted string",
		".unknown 4":         "unknown directive",
		"li r1":              "li needs",
		"movi r1, 'toolong'": "bad char literal",
	}
	for src, wantSub := range cases {
		_, err := Assemble(src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", src, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Assemble(%q) error %q, want substring %q", src, err, wantSub)
		}
	}
}

func TestErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v, want mention of line 3", err)
	}
}

func TestROMEncodeDecodeRoundTrip(t *testing.T) {
	r := &ROM{Title: "Test Game", Entry: 0x10, LoadAddr: 0, Seed: 0xCAFEBABE, Code: []byte{1, 2, 3, 4}}
	img := r.Encode()
	got, err := Decode(img)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Title != r.Title || got.Entry != r.Entry || got.Seed != r.Seed {
		t.Errorf("decoded %+v, want %+v", got, r)
	}
	if len(got.Code) != 4 || got.Code[0] != 1 {
		t.Errorf("code mismatch: %v", got.Code)
	}
}

func TestROMDecodeRejectsCorruption(t *testing.T) {
	r := &ROM{Title: "T", Seed: 1, Code: []byte{9, 9, 9, 9}}
	img := r.Encode()

	if _, err := Decode(img[:8]); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte{}, img...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	flip := append([]byte{}, img...)
	flip[len(flip)-6] ^= 0xFF // corrupt code
	if _, err := Decode(flip); err == nil {
		t.Error("checksum mismatch accepted")
	}
	ver := append([]byte{}, img...)
	ver[4] = 99
	if _, err := Decode(ver); err == nil {
		t.Error("bad version accepted")
	}
}

func TestAssembleROMBootsWithStartEntry(t *testing.T) {
	r, err := AssembleROM("Boot Test", `
	.org 0x10
start:
	movi r1, 7
	halt
`, 55)
	if err != nil {
		t.Fatal(err)
	}
	if r.Entry != 0x10 {
		t.Fatalf("entry = %#x, want 0x10", r.Entry)
	}
	c, err := r.Boot()
	if err != nil {
		t.Fatal(err)
	}
	c.StepFrame(0)
	if c.Reg(1) != 7 {
		t.Errorf("r1 = %d, want 7 (entry not honored)", c.Reg(1))
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	a := mustAssemble(t, `
; full line comment

	nop ; trailing comment
label: ; comment after label
	halt
`)
	if len(a.Code) != 8 {
		t.Errorf("code = %d bytes, want 8", len(a.Code))
	}
	if a.Symbols["label"] != 4 {
		t.Errorf("label = %d, want 4", a.Symbols["label"])
	}
}
