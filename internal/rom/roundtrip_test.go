package rom

import (
	"math/rand"
	"strings"
	"testing"

	"retrolock/internal/vm"
)

// TestDisassemblerOutputReassembles: for every defined opcode, a randomly
// generated instruction must disassemble to text that the assembler turns
// back into the identical four bytes. This pins the assembler and
// disassembler to the same encoding, including operand forms.
func TestDisassemblerOutputReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	mnemonics := vm.Mnemonics()
	for name, op := range mnemonics {
		op := op
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				// Populate only the fields this operand form encodes;
				// the others are not representable in assembly text.
				in := vm.Instr{Op: op}
				kind, _ := vm.OperandKindOf(op)
				switch kind {
				case vm.KindRdImm, vm.KindSys:
					in.Rd = byte(rng.Intn(16))
					in.Imm = uint16(rng.Intn(0x10000))
				case vm.KindRdRa:
					in.Rd = byte(rng.Intn(16))
					in.Ra = byte(rng.Intn(16))
				case vm.KindRRR:
					in.Rd = byte(rng.Intn(16))
					in.Ra = byte(rng.Intn(16))
					in.Imm = uint16(rng.Intn(16)) // rb nibble
				case vm.KindRRI, vm.KindMem, vm.KindBranch:
					in.Rd = byte(rng.Intn(16))
					in.Ra = byte(rng.Intn(16))
					in.Imm = uint16(rng.Intn(0x10000))
				case vm.KindImm:
					in.Imm = uint16(rng.Intn(0x10000))
				case vm.KindRa:
					in.Ra = byte(rng.Intn(16))
				case vm.KindRd:
					in.Rd = byte(rng.Intn(16))
				}
				in.Rb = byte(in.Imm & 0x0F)

				text := vm.Disassemble(in)
				a, err := Assemble(text)
				if err != nil {
					t.Fatalf("reassembling %q: %v", text, err)
				}
				if len(a.Code) != 4 {
					t.Fatalf("%q assembled to %d bytes", text, len(a.Code))
				}
				want := in.Encode()
				for i := 0; i < 4; i++ {
					if a.Code[i] != want[i] {
						t.Fatalf("%q: byte %d = %#x, want %#x (instr %+v)",
							text, i, a.Code[i], want[i], in)
					}
				}
			}
		})
	}
}

// TestGameDisassembliesParse: the full disassembly of each shipped game must
// at least be non-empty and contain only defined mnemonics or data bytes.
func TestGameDisassembliesParse(t *testing.T) {
	// The games contain data sections, which disassemble as junk ("db"
	// lines) — so full-listing reassembly is not expected. This checks
	// structural sanity: every line is addressed and printable.
	src := `
start:
	movi r1, 1
	jmp start
`
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	listing := vm.DisassembleCode(a.Code, 0)
	if !strings.Contains(listing, "movi r1, 1") || !strings.Contains(listing, "jmp 0x0000") {
		t.Fatalf("listing unexpected:\n%s", listing)
	}
}
