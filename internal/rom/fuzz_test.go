package rom

import (
	"bytes"
	"testing"
)

// FuzzDecodeROM throws arbitrary bytes at the container parser. Decode must
// never panic, and any image it accepts must survive an encode/decode
// round-trip with every field intact — the property the wire depends on
// when a ROM is shipped to a late joiner or loaded from disk.
func FuzzDecodeROM(f *testing.F) {
	seed := &ROM{Title: "Seed Game", Entry: 0x40, LoadAddr: 0, Seed: 0xC0FFEE, Code: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	good := seed.Encode()
	f.Add(good)
	f.Add((&ROM{}).Encode())
	f.Add(good[:len(good)-1])          // truncated checksum
	f.Add(append([]byte{}, "RK32"...)) // header only
	flipped := append([]byte{}, good...)
	flipped[10] ^= 0xFF // corrupt a header byte: checksum must catch it
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(r.Encode())
		if err != nil {
			t.Fatalf("re-decoding an accepted image failed: %v", err)
		}
		if again.Title != r.Title || again.Entry != r.Entry ||
			again.LoadAddr != r.LoadAddr || again.Seed != r.Seed ||
			!bytes.Equal(again.Code, r.Code) {
			t.Fatalf("round-trip changed the ROM: %+v != %+v", again, r)
		}
	})
}
