package rom

import (
	"fmt"
	"strconv"
	"strings"

	"retrolock/internal/vm"
)

// Assembler for the RK-32 instruction set.
//
// Source syntax, one statement per line:
//
//	; comment                       everything after ';' is ignored
//	label:                          define a symbol at the current address
//	.equ NAME, expr                 define a constant (no forward refs)
//	.org expr                       move the location counter forward
//	.align expr                     pad with zeros to a multiple of expr
//	.byte e, e, ...                 emit bytes
//	.half e, ...                    emit 16-bit little-endian values
//	.word e, ...                    emit 32-bit little-endian values
//	.space expr [, fill]            emit expr fill bytes (default 0)
//	.ascii "text"                   emit the UTF-8 bytes of text
//	mnemonic operands               one CPU instruction (4 bytes)
//	li rd, expr                     pseudo-instruction: movi+movhi (8 bytes)
//
// Operands: registers r0-r15 (sp = r15); memory operands [rN+expr],
// [rN-expr], [rN] or [expr] (implicit r0 base); integer expressions with
// + - * / ( ), decimal/hex (0x)/char ('A') literals, labels and .equ names.
//
// The assembler is two-pass: pass one sizes statements and collects labels,
// pass two evaluates operand expressions (forward label references are fine
// anywhere except in .equ/.org/.align/.space sizes) and emits code.

// MaxImageSize caps the assembled image at the RK-32 address space: entry
// and load addresses are 16-bit, so nothing past 64 KiB is addressable
// anyway. The cap also stops hostile ".org"/".space" operands from growing
// the output without bound (the fuzzer found that in about a second).
const MaxImageSize = 1 << 16

// Assembly is the output of Assemble.
type Assembly struct {
	// Code is the flat image, origin 0 (gaps from .org are zero-filled).
	Code []byte
	// Symbols maps every label and .equ constant to its value.
	Symbols map[string]int64
}

// Entry returns the address of the conventional "start" label, or 0.
func (a *Assembly) Entry() uint16 {
	if v, ok := a.Symbols["start"]; ok {
		return uint16(v)
	}
	return 0
}

// Assemble translates source text into an RK-32 code image.
func Assemble(src string) (*Assembly, error) {
	asm := &assembler{
		symbols:   make(map[string]int64),
		mnemonics: vm.Mnemonics(),
	}
	lines := strings.Split(src, "\n")

	// Pass 1: addresses.
	if err := asm.scan(lines, false); err != nil {
		return nil, err
	}
	// Pass 2: emit.
	if err := asm.scan(lines, true); err != nil {
		return nil, err
	}
	return &Assembly{Code: asm.out, Symbols: asm.symbols}, nil
}

// AssembleROM assembles src and wraps it in a cartridge. The entry point is
// the "start" label when present.
func AssembleROM(title, src string, seed uint32) (*ROM, error) {
	a, err := Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("rom: assembling %s: %w", title, err)
	}
	return &ROM{Title: title, Entry: a.Entry(), Seed: seed, Code: a.Code}, nil
}

type assembler struct {
	symbols   map[string]int64
	mnemonics map[string]byte
	pc        int64
	out       []byte
	emitting  bool
	line      int
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return fmt.Errorf("asm: line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) scan(lines []string, emit bool) error {
	a.pc = 0
	a.emitting = emit
	if emit {
		a.out = a.out[:0]
	}
	for i, raw := range lines {
		a.line = i + 1
		if err := a.statement(raw); err != nil {
			return err
		}
		// Checked per statement, so pass 1 (which never allocates) rejects
		// an oversized layout before pass 2 would try to materialize it.
		if a.pc > MaxImageSize {
			return a.errf("image exceeds %d bytes (pc=0x%X)", MaxImageSize, a.pc)
		}
	}
	return nil
}

func (a *assembler) statement(raw string) error {
	line := raw
	if idx := strings.IndexByte(line, ';'); idx >= 0 {
		line = line[:idx]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}

	// Label prefix (may be alone on the line).
	if idx := strings.IndexByte(line, ':'); idx >= 0 && isSymbol(strings.TrimSpace(line[:idx])) {
		name := strings.TrimSpace(line[:idx])
		if !a.emitting {
			if _, dup := a.symbols[name]; dup {
				return a.errf("duplicate symbol %q", name)
			}
			a.symbols[name] = a.pc
		}
		line = strings.TrimSpace(line[idx+1:])
		if line == "" {
			return nil
		}
	}

	op, rest, _ := strings.Cut(line, " ")
	op = strings.ToLower(strings.TrimSpace(op))
	rest = strings.TrimSpace(rest)

	if strings.HasPrefix(op, ".") {
		return a.directive(op, rest)
	}
	if op == "li" {
		return a.pseudoLI(rest)
	}
	return a.instruction(op, rest)
}

func (a *assembler) directive(op, rest string) error {
	switch op {
	case ".equ":
		name, exprStr, ok := strings.Cut(rest, ",")
		name = strings.TrimSpace(name)
		if !ok || !isSymbol(name) {
			return a.errf(".equ needs: NAME, expr")
		}
		v, err := a.eval(strings.TrimSpace(exprStr))
		if err != nil {
			return err
		}
		if !a.emitting {
			if _, dup := a.symbols[name]; dup {
				return a.errf("duplicate symbol %q", name)
			}
			a.symbols[name] = v
		}
		return nil

	case ".org":
		v, err := a.eval(rest)
		if err != nil {
			return err
		}
		if v < a.pc {
			return a.errf(".org 0x%X moves backward from 0x%X", v, a.pc)
		}
		a.pad(v - a.pc)
		a.pc = v
		return nil

	case ".align":
		v, err := a.eval(rest)
		if err != nil {
			return err
		}
		if v <= 0 {
			return a.errf(".align needs a positive value")
		}
		n := (v - a.pc%v) % v
		a.pad(n)
		a.pc += n
		return nil

	case ".byte", ".half", ".word":
		width := map[string]int64{".byte": 1, ".half": 2, ".word": 4}[op]
		parts := splitOperands(rest)
		if len(parts) == 0 {
			return a.errf("%s needs at least one value", op)
		}
		for _, p := range parts {
			v, err := a.evalPass2(p)
			if err != nil {
				return err
			}
			if a.emitting {
				for b := int64(0); b < width; b++ {
					a.out = append(a.out, byte(v>>(8*b)))
				}
			}
			a.pc += width
		}
		return nil

	case ".space":
		parts := splitOperands(rest)
		if len(parts) == 0 || len(parts) > 2 {
			return a.errf(".space needs: size [, fill]")
		}
		n, err := a.eval(parts[0])
		if err != nil {
			return err
		}
		if n < 0 {
			return a.errf(".space size is negative")
		}
		fill := int64(0)
		if len(parts) == 2 {
			if fill, err = a.eval(parts[1]); err != nil {
				return err
			}
		}
		if a.emitting {
			for i := int64(0); i < n; i++ {
				a.out = append(a.out, byte(fill))
			}
		}
		a.pc += n
		return nil

	case ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf(".ascii needs a quoted string: %v", err)
		}
		if a.emitting {
			a.out = append(a.out, s...)
		}
		a.pc += int64(len(s))
		return nil

	default:
		return a.errf("unknown directive %s", op)
	}
}

func (a *assembler) pad(n int64) {
	if !a.emitting {
		return
	}
	for i := int64(0); i < n; i++ {
		a.out = append(a.out, 0)
	}
}

// pseudoLI expands "li rd, expr" into movi (+ movhi when the value does not
// fit in a sign-extended 16-bit immediate). It always occupies 8 bytes so
// both passes agree on layout.
func (a *assembler) pseudoLI(rest string) error {
	parts := splitOperands(rest)
	if len(parts) != 2 {
		return a.errf("li needs: rd, expr")
	}
	rd, err := a.reg(parts[0])
	if err != nil {
		return err
	}
	v, err := a.evalPass2(parts[1])
	if err != nil {
		return err
	}
	lo := uint16(v)
	hi := uint16(uint32(v) >> 16)
	a.emit(vm.Instr{Op: vm.OpMOVI, Rd: rd, Imm: lo})
	if int64(int16(lo)) == v {
		// Sign extension already yields the full value; keep the slot
		// with a nop so li is fixed-size.
		a.emit(vm.Instr{Op: vm.OpNOP})
	} else {
		a.emit(vm.Instr{Op: vm.OpMOVHI, Rd: rd, Imm: hi})
	}
	return nil
}

func (a *assembler) emit(in vm.Instr) {
	if a.emitting {
		e := in.Encode()
		a.out = append(a.out, e[:]...)
	}
	a.pc += 4
}

func (a *assembler) instruction(op, rest string) error {
	code, ok := a.mnemonics[op]
	if !ok {
		return a.errf("unknown mnemonic %q", op)
	}
	kind, _ := vm.OperandKindOf(code)
	parts := splitOperands(rest)
	in := vm.Instr{Op: code}

	need := func(n int) error {
		if len(parts) != n {
			return a.errf("%s needs %d operand(s), got %d", op, n, len(parts))
		}
		return nil
	}

	var err error
	switch kind {
	case vm.KindNone:
		if err = need(0); err != nil {
			return err
		}

	case vm.KindRdImm:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}
		if in.Imm, err = a.imm16(parts[1]); err != nil {
			return err
		}

	case vm.KindRdRa:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}
		if in.Ra, err = a.reg(parts[1]); err != nil {
			return err
		}

	case vm.KindRRR:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}
		if in.Ra, err = a.reg(parts[1]); err != nil {
			return err
		}
		var rb byte
		if rb, err = a.reg(parts[2]); err != nil {
			return err
		}
		in.Imm = uint16(rb) // low nibble carries rb

	case vm.KindRRI:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}
		if in.Ra, err = a.reg(parts[1]); err != nil {
			return err
		}
		if in.Imm, err = a.imm16(parts[2]); err != nil {
			return err
		}

	case vm.KindMem:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}
		var ra byte
		var off uint16
		if ra, off, err = a.memOperand(parts[1]); err != nil {
			return err
		}
		in.Ra, in.Imm = ra, off

	case vm.KindImm:
		if err = need(1); err != nil {
			return err
		}
		if in.Imm, err = a.imm16(parts[0]); err != nil {
			return err
		}

	case vm.KindRa:
		if err = need(1); err != nil {
			return err
		}
		if in.Ra, err = a.reg(parts[0]); err != nil {
			return err
		}

	case vm.KindRd:
		if err = need(1); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}

	case vm.KindBranch:
		if err = need(3); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}
		if in.Ra, err = a.reg(parts[1]); err != nil {
			return err
		}
		if in.Imm, err = a.imm16(parts[2]); err != nil {
			return err
		}

	case vm.KindSys:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = a.reg(parts[0]); err != nil {
			return err
		}
		if in.Imm, err = a.imm16(parts[1]); err != nil {
			return err
		}
	}
	a.emit(in)
	return nil
}

// reg parses a register operand.
func (a *assembler) reg(s string) (byte, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return vm.RegSP, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < vm.NumRegs {
			return byte(n), nil
		}
	}
	return 0, a.errf("bad register %q", s)
}

// imm16 evaluates an expression into a 16-bit immediate (accepting the
// signed and unsigned ranges).
func (a *assembler) imm16(s string) (uint16, error) {
	v, err := a.evalPass2(s)
	if err != nil {
		return 0, err
	}
	if v < -32768 || v > 65535 {
		return 0, a.errf("value %d does not fit in 16 bits", v)
	}
	return uint16(v), nil
}

// memOperand parses [reg+expr], [reg-expr], [reg] or [expr].
func (a *assembler) memOperand(s string) (byte, uint16, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return 0, 0, a.errf("empty memory operand")
	}
	// Try to split "rN" or "sp" prefix followed by +/- offset.
	if base, off, ok := splitBase(inner); ok {
		ra, err := a.reg(base)
		if err != nil {
			return 0, 0, err
		}
		if off == "" {
			return ra, 0, nil
		}
		imm, err := a.imm16(off)
		if err != nil {
			return 0, 0, err
		}
		return ra, imm, nil
	}
	imm, err := a.imm16(inner)
	if err != nil {
		return 0, 0, err
	}
	return 0, imm, nil
}

// splitBase detects a register base at the start of a memory operand,
// returning the register text and the remaining offset expression (with its
// sign folded in).
func splitBase(s string) (base, off string, ok bool) {
	low := strings.ToLower(s)
	var n int
	switch {
	case strings.HasPrefix(low, "sp"):
		n = 2
	case strings.HasPrefix(low, "r"):
		n = 1
		for n < len(s) && s[n] >= '0' && s[n] <= '9' {
			n++
		}
		if n == 1 {
			return "", "", false
		}
	default:
		return "", "", false
	}
	rest := strings.TrimSpace(s[n:])
	switch {
	case rest == "":
		return s[:n], "", true
	case rest[0] == '+':
		return s[:n], strings.TrimSpace(rest[1:]), true
	case rest[0] == '-':
		return s[:n], "-(" + strings.TrimSpace(rest[1:]) + ")", true
	default:
		return "", "", false
	}
}

// evalPass2 evaluates an expression, tolerating unresolved symbols during
// pass one (layout does not depend on operand values).
func (a *assembler) evalPass2(s string) (int64, error) {
	v, err := a.eval(s)
	if err != nil && !a.emitting {
		return 0, nil // forward reference; resolved in pass two
	}
	return v, err
}

// eval evaluates an integer expression.
func (a *assembler) eval(s string) (int64, error) {
	p := exprParser{src: s, asm: a}
	v, err := p.expr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, a.errf("trailing junk in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
	asm *assembler
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) expr() (int64, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '+':
			p.pos++
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			p.pos++
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

func (p *exprParser) term() (int64, error) {
	v, err := p.factor()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '*':
			p.pos++
			f, err := p.factor()
			if err != nil {
				return 0, err
			}
			v *= f
		case '/':
			p.pos++
			f, err := p.factor()
			if err != nil {
				return 0, err
			}
			if f == 0 {
				return 0, p.asm.errf("division by zero in expression")
			}
			v /= f
		default:
			return v, nil
		}
	}
}

func (p *exprParser) factor() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, p.asm.errf("unexpected end of expression %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '-':
		p.pos++
		v, err := p.factor()
		return -v, err
	case c == '(':
		p.pos++
		v, err := p.expr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, p.asm.errf("missing ')' in expression %q", p.src)
		}
		p.pos++
		return v, nil
	case c == '\'':
		// Char literal, with minimal escapes.
		rest := p.src[p.pos:]
		if len(rest) >= 4 && rest[1] == '\\' && rest[3] == '\'' {
			p.pos += 4
			switch rest[2] {
			case 'n':
				return '\n', nil
			case 't':
				return '\t', nil
			case '0':
				return 0, nil
			case '\\':
				return '\\', nil
			case '\'':
				return '\'', nil
			}
			return 0, p.asm.errf("bad escape in char literal")
		}
		if len(rest) >= 3 && rest[2] == '\'' {
			p.pos += 3
			return int64(rest[1]), nil
		}
		return 0, p.asm.errf("bad char literal")
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && isNumChar(p.src[p.pos]) {
			p.pos++
		}
		v, err := strconv.ParseInt(p.src[start:p.pos], 0, 64)
		if err != nil {
			return 0, p.asm.errf("bad number %q", p.src[start:p.pos])
		}
		return v, nil
	case isSymbolStart(c):
		start := p.pos
		for p.pos < len(p.src) && isSymbolChar(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		v, ok := p.asm.symbols[name]
		if !ok {
			return 0, p.asm.errf("undefined symbol %q", name)
		}
		return v, nil
	default:
		return 0, p.asm.errf("unexpected %q in expression", string(c))
	}
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c == 'x' || c == 'X' ||
		c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' || c == 'b' || c == 'B' || c == 'o' || c == 'O'
}

func isSymbolStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isSymbolChar(c byte) bool {
	return isSymbolStart(c) || c >= '0' && c <= '9'
}

// isSymbol reports whether s is a valid label/constant name that is not a
// register.
func isSymbol(s string) bool {
	if s == "" || !isSymbolStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isSymbolChar(s[i]) {
			return false
		}
	}
	low := strings.ToLower(s)
	if low == "sp" {
		return false
	}
	if len(low) >= 2 && low[0] == 'r' {
		if _, err := strconv.Atoi(low[1:]); err == nil {
			return false
		}
	}
	return true
}

// splitOperands splits a comma-separated operand list, keeping bracketed
// groups intact.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts
}
