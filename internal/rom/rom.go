// Package rom implements the RK-32 cartridge toolchain: the ROM container
// format, a two-pass assembler for the console's instruction set, and (in
// the games subpackage) the game library shipped with the system.
//
// In the paper's setup both players load "the same game image" into their
// VMs (§2); the ROM image is that artifact. The header carries the LFSR
// seed, so replicated consoles share their randomness source and stay
// deterministic (§5).
package rom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"retrolock/internal/vm"
)

// Container format (little endian):
//
//	magic    "RK32" (4 bytes)
//	version  u16
//	flags    u16 (reserved, zero)
//	entry    u16
//	loadAddr u16
//	seed     u32
//	titleLen u8, title bytes (UTF-8)
//	codeLen  u32, code bytes
//	crc      u32 — FNV-1a/32 of every preceding byte
const (
	Magic   = "RK32"
	Version = 1
)

// ROM is a decoded cartridge.
type ROM struct {
	Title    string
	Entry    uint16
	LoadAddr uint16
	Seed     uint32
	Code     []byte
}

// Encode serializes the ROM into its container format.
func (r *ROM) Encode() []byte {
	buf := make([]byte, 0, 19+len(r.Title)+len(r.Code)+4)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags
	buf = binary.LittleEndian.AppendUint16(buf, r.Entry)
	buf = binary.LittleEndian.AppendUint16(buf, r.LoadAddr)
	buf = binary.LittleEndian.AppendUint32(buf, r.Seed)
	buf = append(buf, byte(len(r.Title)))
	buf = append(buf, r.Title[:min(len(r.Title), 255)]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Code)))
	buf = append(buf, r.Code...)
	h := fnv.New32a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint32(buf, h.Sum32())
}

// Decode parses a container image.
func Decode(data []byte) (*ROM, error) {
	if len(data) < 19+4 {
		return nil, fmt.Errorf("rom: image of %d bytes too short", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("rom: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("rom: unsupported version %d", v)
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	h := fnv.New32a()
	h.Write(body)
	if got, want := h.Sum32(), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("rom: checksum mismatch (image corrupt): %#x != %#x", got, want)
	}
	r := &ROM{
		Entry:    binary.LittleEndian.Uint16(data[8:10]),
		LoadAddr: binary.LittleEndian.Uint16(data[10:12]),
		Seed:     binary.LittleEndian.Uint32(data[12:16]),
	}
	titleLen := int(data[16])
	off := 17
	if off+titleLen+4 > len(body) {
		return nil, fmt.Errorf("rom: truncated title")
	}
	r.Title = string(data[off : off+titleLen])
	off += titleLen
	codeLen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if off+codeLen > len(body) {
		return nil, fmt.Errorf("rom: truncated code (%d bytes declared, %d available)", codeLen, len(body)-off)
	}
	r.Code = make([]byte, codeLen)
	copy(r.Code, data[off:off+codeLen])
	return r, nil
}

// Boot creates a console running this ROM.
func (r *ROM) Boot() (*vm.Console, error) {
	return vm.New(vm.Params{
		Code:     r.Code,
		LoadAddr: r.LoadAddr,
		Entry:    r.Entry,
		Seed:     r.Seed,
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
