package span

import (
	"testing"
	"time"

	"retrolock/internal/obs"
)

var testEpoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return testEpoch.Add(d) }

func TestJournalLifecycleDerivesLatencies(t *testing.T) {
	j := NewJournal(testEpoch, 128)
	j.Cross = &obs.Histogram{}
	j.Local = &obs.Histogram{}
	j.Net = &obs.Histogram{}
	j.Skew = &obs.Histogram{}

	const lag = 6
	// Local journey for frame 10: pressed at 100ms (buffered for frame 10 =
	// current frame 4 + lag), executed at 200ms.
	j.StampPressed(10, at(100*time.Millisecond))
	j.StampSendRange(4, 10, at(101*time.Millisecond))
	j.StampExecuted(10, at(200*time.Millisecond))
	j.StampRendered(10, at(201*time.Millisecond))
	if got := j.Local.Count(); got != 1 {
		t.Fatalf("local latency observations = %d, want 1", got)
	}
	// 100ms -> bucket of 10^8 ns.
	if got, lo := j.Local.Sum(), int64(100*time.Millisecond); got != lo {
		t.Fatalf("local latency sum = %d, want %d", got, lo)
	}

	// Remote journey: the peer began frame 4 at 95ms (mapped), so its input
	// pressed there takes effect at frame 10. We already executed frame 10
	// at 200ms -> cross latency 105ms, observed when the remote stamp lands.
	j.StampRemoteExec(4, int64(95*time.Millisecond), lag)
	if got := j.Cross.Count(); got != 1 {
		t.Fatalf("cross latency observations = %d, want 1", got)
	}
	if got := j.Cross.Sum(); got != int64(105*time.Millisecond) {
		t.Fatalf("cross latency sum = %d, want %d", got, int64(105*time.Millisecond))
	}

	// Skew for frame 10: we executed at 200ms, peer at 204ms -> 4ms.
	j.StampRemoteExec(10, int64(204*time.Millisecond), lag)
	if got := j.Skew.Count(); got != 1 {
		t.Fatalf("skew observations = %d, want 1", got)
	}
	if got := j.Skew.Sum(); got != int64(4*time.Millisecond) {
		t.Fatalf("skew sum = %d, want %d", got, int64(4*time.Millisecond))
	}

	// Net latency: peer sent at 150ms, we received at 152ms -> 2ms.
	j.StampRecv(12, at(152*time.Millisecond), int64(150*time.Millisecond))
	if got := j.Net.Count(); got != 1 {
		t.Fatalf("net latency observations = %d, want 1", got)
	}
	if got := j.Net.Sum(); got != int64(2*time.Millisecond) {
		t.Fatalf("net latency sum = %d, want %d", got, int64(2*time.Millisecond))
	}

	s, ok := j.Get(10)
	if !ok {
		t.Fatal("span for frame 10 not resident")
	}
	if s.Pressed == 0 || s.Sent == 0 || s.Executed == 0 || s.Rendered == 0 ||
		s.RemoteExec == 0 || s.RemotePressed == 0 {
		t.Fatalf("span 10 missing stamps: %+v", s)
	}
}

func TestJournalStampsAreFirstWins(t *testing.T) {
	j := NewJournal(testEpoch, 64)
	j.Skew = &obs.Histogram{}
	j.StampExecuted(5, at(10*time.Millisecond))
	j.StampExecuted(5, at(99*time.Millisecond)) // ignored
	s, _ := j.Get(5)
	if s.Executed != int64(10*time.Millisecond) {
		t.Fatalf("Executed = %d, want first stamp %d", s.Executed, int64(10*time.Millisecond))
	}
	// Duplicate remote exec reports (every incoming message repeats the
	// newest) must observe skew exactly once.
	j.StampRemoteExec(5, int64(12*time.Millisecond), 0)
	j.StampRemoteExec(5, int64(50*time.Millisecond), 0)
	if got := j.Skew.Count(); got != 1 {
		t.Fatalf("skew observed %d times, want exactly 1", got)
	}
	if got := j.Skew.Sum(); got != int64(2*time.Millisecond) {
		t.Fatalf("skew sum = %d, want %d", got, int64(2*time.Millisecond))
	}
}

func TestJournalRingReusesSlotsAndDropsStale(t *testing.T) {
	j := NewJournal(testEpoch, 64)
	if j.Cap() != 64 {
		t.Fatalf("cap = %d, want 64", j.Cap())
	}
	j.StampExecuted(3, at(time.Millisecond))
	// Frame 3+64 lands on the same slot and must evict frame 3.
	j.StampExecuted(3+64, at(2*time.Millisecond))
	if _, ok := j.Get(3); ok {
		t.Fatal("evicted frame 3 still resident")
	}
	if s, ok := j.Get(67); !ok || s.Executed != int64(2*time.Millisecond) {
		t.Fatalf("frame 67 span = %+v ok=%v", s, ok)
	}
	// A stale stamp for the evicted frame must not corrupt the new resident.
	j.StampPressed(3, at(5*time.Millisecond))
	if s, _ := j.Get(67); s.Pressed != 0 {
		t.Fatalf("stale stamp for frame 3 landed on frame 67: %+v", s)
	}
}

func TestJournalSpansOrdered(t *testing.T) {
	j := NewJournal(testEpoch, 64)
	for f := int64(100); f < 180; f++ { // wraps the 64-slot ring
		j.StampExecuted(f, at(time.Duration(f)*time.Millisecond))
	}
	spans := j.Spans()
	if len(spans) != 64 {
		t.Fatalf("resident spans = %d, want 64", len(spans))
	}
	for i, s := range spans {
		if want := int64(116 + i); s.Frame != want {
			t.Fatalf("spans[%d].Frame = %d, want %d", i, s.Frame, want)
		}
	}
}

func TestJournalStampingDoesNotAllocate(t *testing.T) {
	j := NewJournal(testEpoch, 256)
	j.Cross = &obs.Histogram{}
	j.Local = &obs.Histogram{}
	j.Net = &obs.Histogram{}
	j.Skew = &obs.Histogram{}
	frame := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now := at(time.Duration(frame) * 16 * time.Millisecond)
		j.StampPressed(frame+6, now)
		j.StampSendRange(frame, frame+6, now)
		j.StampRecv(frame, now, int64(frame)*1000)
		j.StampRemoteExec(frame, int64(frame+1)*1000, 6)
		j.StampExecuted(frame, now)
		j.StampRendered(frame, now)
		j.Retransmit(now)
		frame++
	})
	if allocs != 0 {
		t.Fatalf("journal stamping allocates %.1f/op, want 0", allocs)
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.StampPressed(1, at(0))
	j.StampSendRange(0, 5, at(0))
	j.StampRecv(1, at(0), 5)
	j.StampRemoteExec(1, 5, 6)
	j.StampExecuted(1, at(0))
	j.StampRendered(1, at(0))
	j.Retransmit(at(0))
	if j.Spans() != nil || j.Cap() != 0 || j.Stamped() != 0 {
		t.Fatal("nil journal leaked state")
	}
	if _, ok := j.Get(1); ok {
		t.Fatal("nil journal returned a span")
	}
}

func TestOffsetEstimatorSymmetricPath(t *testing.T) {
	var e OffsetEstimator
	if e.Ready() {
		t.Fatal("estimator ready before any sample")
	}
	// Peer clock runs 250000 us ahead of ours; path delay 10000 us each way,
	// peer holds the echo 3000 us.
	const peerAhead = 250000
	t1 := uint32(1000000)
	t2 := t1 + 10000 + peerAhead // peer receive, peer clock
	hold := uint32(3000)
	t3 := t2 + hold
	t4 := t1 + 10000 + hold + 10000
	e.AddEcho(t1, hold, t3, t4)
	off, ok := e.OffsetMicros()
	if !ok {
		t.Fatal("no estimate after sample")
	}
	if off != -peerAhead {
		t.Fatalf("offset = %d, want %d", off, -peerAhead)
	}
	if rtt := e.MinRTTMicros(); rtt != 20000 {
		t.Fatalf("min rtt = %d, want 20000", rtt)
	}
	// Mapping a fresh peer stamp through the offset must recover the local
	// instant: peer stamps t5 (peer clock) at local instant L.
	localNowNs := int64(5 * time.Second)
	nowMicros := uint32(5000000)
	peerStamp := uint32(4900000 + peerAhead) // peer's clock at local 4.9s
	got := MapRemoteMicros(peerStamp, off, nowMicros, localNowNs)
	if want := int64(4900000) * 1000; got != want {
		t.Fatalf("mapped remote stamp = %d, want %d", got, want)
	}
}

func TestOffsetEstimatorPrefersMinRTT(t *testing.T) {
	var e OffsetEstimator
	// A slow, queue-skewed sample first: 100ms out, 20ms back biases the
	// midpoint by 40ms.
	e.AddEcho(0, 0, 100000, 120000)
	biased, _ := e.OffsetMicros()
	// Then a fast symmetric sample with the true offset 0.
	e.AddEcho(200000, 0, 205000, 210000)
	off, _ := e.OffsetMicros()
	if off == biased && biased != 0 {
		t.Fatalf("estimator kept the slow biased sample: %d", off)
	}
	if off != 0 {
		t.Fatalf("offset = %d, want 0 from the min-RTT sample", off)
	}
	if rtt := e.MinRTTMicros(); rtt != 10000 {
		t.Fatalf("min rtt = %d, want 10000", rtt)
	}
	if e.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", e.Samples())
	}
}

func TestOffsetEstimatorWrapSafety(t *testing.T) {
	var e OffsetEstimator
	// Stamps straddling the 2^32 microsecond wrap (~71.6 minutes).
	t1 := uint32(0xFFFFF000)
	hold := uint32(100)
	t3 := t1 + 5000 + hold // wraps
	t4 := t1 + 10000 + hold
	e.AddEcho(t1, hold, t3, t4)
	off, ok := e.OffsetMicros()
	if !ok {
		t.Fatal("wrap-straddling sample rejected")
	}
	if off != 0 {
		t.Fatalf("offset across wrap = %d, want 0", off)
	}
	if rtt := e.MinRTTMicros(); rtt != 10000 {
		t.Fatalf("rtt across wrap = %d, want 10000", rtt)
	}
}

func TestOffsetEstimatorRejectsNonPositiveRTT(t *testing.T) {
	var e OffsetEstimator
	e.AddEcho(1000, 500, 1200, 1400) // rtt = 400-500 < 0
	if e.Ready() {
		t.Fatal("non-positive RTT sample accepted")
	}
}

func TestNilOffsetEstimator(t *testing.T) {
	var e *OffsetEstimator
	e.AddEcho(1, 2, 3, 4)
	if e.Ready() || e.Samples() != 0 || e.MinRTTMicros() != 0 {
		t.Fatal("nil estimator leaked state")
	}
	if _, ok := e.OffsetMicros(); ok {
		t.Fatal("nil estimator produced an offset")
	}
}

func TestSpanWireRoundTrip(t *testing.T) {
	spans := []Span{
		{Frame: 7, Pressed: 1, Encoded: 2, Sent: 3, Executed: 4, Rendered: 5,
			Recv: 6, Merged: 7, RemoteSend: 8, RemoteExec: 9, RemotePressed: 10, Retransmits: 2},
		{Frame: 8},
		{Frame: -3, Executed: -1}, // hostile but representable values survive
	}
	blob := AppendSpans(nil, spans)
	got, err := DecodeSpans(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(spans) {
		t.Fatalf("decoded %d spans, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Fatalf("span %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], spans[i])
		}
	}
	// Empty set round-trips too.
	if got, err := DecodeSpans(AppendSpans(nil, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %d spans", err, len(got))
	}
}

func TestSpanWireRejectsDamage(t *testing.T) {
	blob := AppendSpans(nil, []Span{{Frame: 1}})
	cases := map[string][]byte{
		"short":       blob[:5],
		"bad magic":   append([]byte("NOPE"), blob[4:]...),
		"bad version": append(append([]byte{}, blob[:4]...), append([]byte{9, 9}, blob[6:]...)...),
		"truncated":   blob[:len(blob)-1],
		"surplus":     append(append([]byte{}, blob...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeSpans(b); err == nil {
			t.Errorf("%s: decode accepted damaged blob", name)
		}
	}
	// Count claiming more records than the blob holds must not over-read.
	big := append([]byte{}, blob...)
	big[6] = 0xFF
	big[7] = 0xFF
	if _, err := DecodeSpans(big); err == nil {
		t.Error("oversized count accepted")
	}
}
