package span

import (
	"bytes"
	"testing"
	"time"
)

// sessionSeedBlob encodes the journal of a synthetic but realistically
// stamped session — the shape real flight bundles embed — so the fuzzer
// starts from valid wire bytes, not noise.
func sessionSeedBlob() []byte {
	epoch := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	j := NewJournal(epoch, 128)
	const lag = 6
	for f := int64(0); f < 200; f++ {
		now := epoch.Add(time.Duration(f) * 16670 * time.Microsecond)
		j.StampPressed(f+lag, now)
		j.StampSendRange(f, f+lag, now.Add(50*time.Microsecond))
		j.StampRecv(f, now.Add(2*time.Millisecond), int64(f)*16670000+1)
		j.StampRemoteExec(f, int64(f)*16670000+500000, lag)
		j.StampExecuted(f, now.Add(3*time.Millisecond))
		j.StampRendered(f, now.Add(5*time.Millisecond))
		if f%17 == 0 {
			j.Retransmit(now.Add(time.Millisecond))
		}
	}
	return AppendSpans(nil, j.Spans())
}

// FuzzDecodeSpan pins two properties of the RKSP encoding: DecodeSpans never
// panics on arbitrary bytes, and whatever it accepts re-encodes to the exact
// input (decode ∘ encode ∘ decode identity).
func FuzzDecodeSpan(f *testing.F) {
	f.Add(sessionSeedBlob())
	f.Add(AppendSpans(nil, nil))
	f.Add(AppendSpans(nil, []Span{{Frame: 42, Pressed: 1, Executed: 2, Retransmits: 3}}))
	f.Add([]byte(spanMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		spans, err := DecodeSpans(data)
		if err != nil {
			return
		}
		again := AppendSpans(nil, spans)
		if !bytes.Equal(again, data) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data)
		}
		back, err := DecodeSpans(again)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		for i := range spans {
			if back[i] != spans[i] {
				t.Fatalf("span %d not identical after round trip", i)
			}
		}
	})
}
