package span

import (
	"testing"
	"time"

	"retrolock/internal/obs"
)

func journalPair() (*Journal, *Journal) {
	epoch := time.Unix(100, 0)
	mk := func() *Journal {
		j := NewJournal(epoch, 128)
		j.Cross = &obs.Histogram{}
		j.Local = &obs.Histogram{}
		j.Net = &obs.Histogram{}
		j.Skew = &obs.Histogram{}
		return j
	}
	return mk(), mk()
}

// TestBatchMatchesDirectStamps drives an identical stamp sequence through a
// Batch and through the direct Stamp* methods and checks the journals end up
// indistinguishable — same spans, same derived-histogram counts.
func TestBatchMatchesDirectStamps(t *testing.T) {
	direct, batched := journalPair()
	var b Batch
	b.Reset(batched)

	at := func(ms int64) time.Time { return direct.Epoch().Add(time.Duration(ms) * time.Millisecond) }
	remote := func(ms int64) int64 { return ms * int64(time.Millisecond) }

	for f := int64(0); f < 40; f++ {
		direct.StampPressed(f, at(f))
		b.Pressed(f, at(f))
		direct.StampSendRange(f-2, f, at(f+1))
		b.SendRange(f-2, f, at(f+1))
		direct.StampRecv(f, at(f+2), remote(f))
		b.Recv(f, at(f+2), remote(f))
		direct.StampRemoteExec(f, remote(f+1), 3)
		b.RemoteExec(f, remote(f+1), 3)
		direct.StampExecuted(f, at(f+3))
		b.Executed(f, at(f+3))
		direct.StampRendered(f, at(f+4))
		b.Rendered(f, at(f+4))
		// Duplicate stamps must lose first-wins in both paths.
		direct.StampExecuted(f, at(f+9))
		b.Executed(f, at(f+9))
	}
	b.Flush()

	if direct.Stamped() != batched.Stamped() {
		t.Fatalf("stamped %d via direct, %d via batch", direct.Stamped(), batched.Stamped())
	}
	for f := int64(0); f < 40; f++ {
		want, _ := direct.Get(f)
		got, ok := batched.Get(f)
		if !ok || got != want {
			t.Fatalf("frame %d: batch span %+v != direct %+v", f, got, want)
		}
	}
	for name, pair := range map[string][2]*obs.Histogram{
		"cross": {direct.Cross, batched.Cross},
		"local": {direct.Local, batched.Local},
		"net":   {direct.Net, batched.Net},
		"skew":  {direct.Skew, batched.Skew},
	} {
		if pair[0].Count() != pair[1].Count() || pair[0].Sum() != pair[1].Sum() {
			t.Errorf("%s histogram diverged: direct {%d %d} batch {%d %d}",
				name, pair[0].Count(), pair[0].Sum(), pair[1].Count(), pair[1].Sum())
		}
	}
}

// TestBatchAutoFlushesAtCapacity checks that overfilling the inline op array
// flushes rather than dropping or reordering stamps.
func TestBatchAutoFlushesAtCapacity(t *testing.T) {
	j := NewJournal(time.Unix(0, 0), 256)
	var b Batch
	b.Reset(j)
	for f := int64(0); f < batchCap+5; f++ {
		b.Pressed(f, j.Epoch().Add(time.Duration(f)))
	}
	if b.Pending() != 5 {
		t.Fatalf("pending = %d after auto-flush, want 5", b.Pending())
	}
	b.Flush()
	for f := int64(0); f < batchCap+5; f++ {
		if s, ok := j.Get(f); !ok || s.Pressed == 0 {
			t.Fatalf("frame %d lost across auto-flush", f)
		}
	}
}

// TestZeroBatchIsInert makes sure unattached (and nil) batches are safe on
// every method, mirroring the journal's nil-receiver contract.
func TestZeroBatchIsInert(t *testing.T) {
	var b Batch
	b.Pressed(1, time.Now())
	b.Executed(1, time.Now())
	b.Flush()
	var pb *Batch
	pb.Rendered(1, time.Now())
	pb.Flush()
	if pb.Pending() != 0 || b.Pending() != 0 {
		t.Fatal("inert batch accumulated ops")
	}
}

// TestBatchStampingDoesNotAllocate pins the hot-path contract: recording into
// a batch and flushing it must stay on the stack.
func TestBatchStampingDoesNotAllocate(t *testing.T) {
	j := NewJournal(time.Unix(0, 0), 128)
	var b Batch
	b.Reset(j)
	now := time.Unix(1, 0)
	var f int64
	allocs := testing.AllocsPerRun(500, func() {
		b.Pressed(f, now)
		b.Executed(f, now)
		b.Rendered(f, now)
		b.Flush()
		f++
	})
	if allocs != 0 {
		t.Fatalf("batch stamping allocates %v per frame, want 0", allocs)
	}
}
