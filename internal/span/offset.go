package span

import "sync/atomic"

// offsetWindow is how many recent echo samples the estimator retains. The
// minimum-RTT sample inside the window wins: queueing delay only ever adds
// (asymmetrically) to an RTT, so the fastest recent exchange is the one whose
// midpoint assumption — equal path delay both ways — held best.
const offsetWindow = 16

// OffsetEstimator turns the sync protocol's existing echo fields into a
// running estimate of the peer clock offset, NTP style. Every accepted sync
// message carries four microsecond instants (mod 2^32):
//
//	t1   our send stamp, echoed back by the peer      (local clock)
//	t2   the peer's receive instant of that message   (peer clock)
//	t3   the peer's send stamp on the echoing message (peer clock)
//	t4   our receive instant of the echo              (local clock)
//
// The wire carries t3 (SendTime) and hold = t3-t2 (EchoDelay) rather than t2
// directly; AddEcho reconstructs t2 = t3 - hold. The classic midpoint
//
//	offset = ((t1 - t2) + (t4 - t3)) / 2
//
// is the amount to ADD to a peer timestamp to express it on the local clock,
// and rtt = (t4 - t1) - hold is the matching path delay. All differences go
// through int32 so the mod-2^32 stamps stay wrap-safe.
//
// AddEcho has a single writer (the frame loop); the published best estimate
// is read atomically from anywhere. A nil estimator ignores samples and
// reports not-ready.
type OffsetEstimator struct {
	ring [offsetWindow]offsetSample
	n    int64 // total samples ever accepted (writer-private ring cursor)

	count  atomic.Int64
	offset atomic.Int64 // best offset, microseconds
	minRTT atomic.Int64 // RTT of the best sample, microseconds
}

type offsetSample struct {
	rtt    int64
	offset int64
}

// AddEcho folds in one echo exchange (all four instants in microseconds mod
// 2^32, hold = peer processing delay). Samples with a non-positive RTT —
// wildly wrong stamps — are dropped.
func (e *OffsetEstimator) AddEcho(t1, hold, t3, t4 uint32) {
	if e == nil {
		return
	}
	t2 := t3 - hold // peer receive instant, peer clock (wrapping)
	rtt := int64(int32(t4-t1)) - int64(int32(hold))
	if rtt <= 0 {
		return
	}
	off := (int64(int32(t1-t2)) + int64(int32(t4-t3))) / 2
	e.ring[e.n%offsetWindow] = offsetSample{rtt: rtt, offset: off}
	e.n++

	valid := e.n
	if valid > offsetWindow {
		valid = offsetWindow
	}
	best := e.ring[0]
	for i := int64(1); i < valid; i++ {
		if e.ring[i].rtt < best.rtt {
			best = e.ring[i]
		}
	}
	e.offset.Store(best.offset)
	e.minRTT.Store(best.rtt)
	e.count.Store(e.n)
}

// Ready reports whether at least one sample has been accepted.
func (e *OffsetEstimator) Ready() bool {
	return e != nil && e.count.Load() > 0
}

// OffsetMicros returns the current best estimate of the peer clock offset in
// microseconds (add to a peer stamp to get local time) and whether any
// estimate exists.
func (e *OffsetEstimator) OffsetMicros() (int64, bool) {
	if e == nil || e.count.Load() == 0 {
		return 0, false
	}
	return e.offset.Load(), true
}

// MinRTTMicros returns the RTT of the sample backing the current estimate.
func (e *OffsetEstimator) MinRTTMicros() int64 {
	if e == nil {
		return 0
	}
	return e.minRTT.Load()
}

// Samples reports how many echo exchanges have been accepted.
func (e *OffsetEstimator) Samples() int64 {
	if e == nil {
		return 0
	}
	return e.count.Load()
}

// MapRemoteMicros maps a peer microsecond stamp (mod 2^32) onto the local
// nanosecond timeline: offsetMicros shifts it onto the local clock, then its
// (signed, wrap-safe) age relative to nowMicros — the local mod-2^32
// microsecond clock at nowNs — anchors it against nowNs. Returns 0 when the
// result would be non-positive (pre-epoch: the mapping is unusable).
func MapRemoteMicros(remote uint32, offsetMicros int64, nowMicros uint32, nowNs int64) int64 {
	ageMicros := int64(int32(nowMicros - (remote + uint32(int32(offsetMicros)))))
	v := nowNs - ageMicros*1000
	if v <= 0 {
		return 0
	}
	return v
}
