package span

import "time"

// Batch coalesces a frame's worth of journal stamps into one mutex
// acquisition. The 60 FPS hot path stamps several hops per frame (pressed,
// sent, received, executed, rendered); stamping them individually costs a
// lock round-trip and a cache bounce each. A Batch instead records the ops
// into a fixed inline array — no lock, no allocation — and Flush applies
// them all under a single lock, in recorded order, with identical first-wins
// and derived-histogram semantics.
//
// A Batch belongs to one goroutine (the frame loop); only Flush touches the
// journal. The zero Batch (no journal attached) is a no-op on every method.
const batchCap = 32

const (
	opPressed uint8 = iota + 1
	opSendRange
	opRecv
	opExecuted
	opRendered
	opRemoteExec
)

// batchOp is one deferred stamp. Field meaning varies by kind:
// SendRange uses frame=from aux=to; Recv uses aux=remoteSendNs;
// RemoteExec uses t=remoteNs aux=lag.
type batchOp struct {
	kind  uint8
	frame int64
	aux   int64
	t     int64
}

// Batch accumulates deferred stamps for one Journal. Embed it by value and
// call Reset to attach the journal.
type Batch struct {
	j   *Journal
	n   int
	ops [batchCap]batchOp
}

// Reset attaches the batch to j (nil detaches) and discards pending ops.
func (b *Batch) Reset(j *Journal) {
	b.j = j
	b.n = 0
}

func (b *Batch) add(op batchOp) {
	if b.n == batchCap {
		b.Flush()
	}
	b.ops[b.n] = op
	b.n++
}

// Pressed defers a StampPressed.
func (b *Batch) Pressed(frame int64, at time.Time) {
	if b == nil || b.j == nil {
		return
	}
	b.add(batchOp{kind: opPressed, frame: frame, t: b.j.ns(at)})
}

// SendRange defers a StampSendRange.
func (b *Batch) SendRange(from, to int64, at time.Time) {
	if b == nil || b.j == nil || to < from {
		return
	}
	b.add(batchOp{kind: opSendRange, frame: from, aux: to, t: b.j.ns(at)})
}

// Recv defers a StampRecv.
func (b *Batch) Recv(frame int64, at time.Time, remoteSendNs int64) {
	if b == nil || b.j == nil {
		return
	}
	b.add(batchOp{kind: opRecv, frame: frame, aux: remoteSendNs, t: b.j.ns(at)})
}

// Executed defers a StampExecuted.
func (b *Batch) Executed(frame int64, at time.Time) {
	if b == nil || b.j == nil {
		return
	}
	b.add(batchOp{kind: opExecuted, frame: frame, t: b.j.ns(at)})
}

// Rendered defers a StampRendered.
func (b *Batch) Rendered(frame int64, at time.Time) {
	if b == nil || b.j == nil {
		return
	}
	b.add(batchOp{kind: opRendered, frame: frame, t: b.j.ns(at)})
}

// RemoteExec defers a StampRemoteExec.
func (b *Batch) RemoteExec(frame int64, remoteNs, lag int64) {
	if b == nil || b.j == nil || remoteNs <= 0 {
		return
	}
	b.add(batchOp{kind: opRemoteExec, frame: frame, t: remoteNs, aux: lag})
}

// Pending reports how many deferred ops await Flush (diagnostics/tests).
func (b *Batch) Pending() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Flush applies every pending op to the journal under one lock, in the order
// they were recorded, and empties the batch.
func (b *Batch) Flush() {
	if b == nil || b.j == nil || b.n == 0 {
		return
	}
	b.j.applyBatch(b.ops[:b.n])
	b.n = 0
}

// applyBatch is the single-lock application of a recorded op sequence.
func (j *Journal) applyBatch(ops []batchOp) {
	j.mu.Lock()
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opPressed:
			j.pressedLocked(op.frame, op.t)
		case opSendRange:
			j.sendRangeLocked(op.frame, op.aux, op.t)
		case opRecv:
			j.recvLocked(op.frame, op.t, op.aux)
		case opExecuted:
			j.executedLocked(op.frame, op.t)
		case opRendered:
			j.renderedLocked(op.frame, op.t)
		case opRemoteExec:
			j.remoteExecLocked(op.frame, op.t, op.aux)
		}
	}
	j.mu.Unlock()
}
