package span

import (
	"encoding/binary"
	"fmt"
)

// Span export encoding ("RKSP"): the serialized form a journal snapshot takes
// inside a flight bundle's spans section (and anywhere else spans travel).
//
//	offset  size  field
//	0       4     magic "RKSP"
//	4       2     version (little-endian, currently 1)
//	6       4     span count n
//	10      96*n  span records
//
// Each record is the Span struct's twelve int64 fields in declaration order,
// little-endian. The layout is versioned, length-checked to the byte, and
// round-trips exactly (DecodeSpans ∘ AppendSpans = identity) — FuzzDecodeSpan
// pins both properties.

const (
	spanMagic = "RKSP"
	// WireVersion is the current encoding version.
	WireVersion = 1
	// RecordSize is one serialized Span: 12 little-endian int64 fields.
	RecordSize = 96
	headerSize = 10
)

// AppendSpans appends the RKSP encoding of spans to dst and returns the
// extended slice.
func AppendSpans(dst []byte, spans []Span) []byte {
	dst = append(dst, spanMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, WireVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(spans)))
	for i := range spans {
		s := &spans[i]
		for _, v := range [...]int64{
			s.Frame,
			s.Pressed, s.Encoded, s.Sent, s.Executed, s.Rendered,
			s.Recv, s.Merged, s.RemoteSend, s.RemoteExec, s.RemotePressed,
			s.Retransmits,
		} {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	}
	return dst
}

// DecodeSpans parses an RKSP blob. The length must match the declared count
// exactly; any surplus, deficit, bad magic or unknown version is an error.
func DecodeSpans(b []byte) ([]Span, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("span: blob too short (%d bytes)", len(b))
	}
	if string(b[:4]) != spanMagic {
		return nil, fmt.Errorf("span: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != WireVersion {
		return nil, fmt.Errorf("span: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(b[6:10])
	want := uint64(headerSize) + uint64(n)*RecordSize
	if uint64(len(b)) != want {
		return nil, fmt.Errorf("span: length %d does not match %d records (want %d)", len(b), n, want)
	}
	out := make([]Span, n)
	off := headerSize
	for i := range out {
		f := func() int64 {
			v := int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
			return v
		}
		s := &out[i]
		s.Frame = f()
		s.Pressed, s.Encoded, s.Sent, s.Executed, s.Rendered = f(), f(), f(), f(), f()
		s.Recv, s.Merged, s.RemoteSend, s.RemoteExec, s.RemotePressed = f(), f(), f(), f(), f()
		s.Retransmits = f()
	}
	return out, nil
}
