// Package span records the lifecycle of every input frame as it travels
// between the two sites of a lockstep session: pressed locally, encoded and
// sent, retransmitted by ARQ, received and merged remotely, executed and
// rendered on both ends. Each frame owns one fixed-size Span slot in a
// power-of-two ring (the Journal), so a week-long session costs constant
// memory and the stamping calls on the 60 FPS hot path never allocate.
//
// The point of the exercise is the paper's feasibility question asked live:
// what is the true end-to-end input latency a player experiences, and how far
// apart are the two machines? Those quantities cross the network, so the two
// sites' clocks must be reconciled first — OffsetEstimator does that from the
// sync protocol's existing echo fields with the classic NTP two-sample
// midpoint, filtered by minimum RTT. With the offset in hand, a remote
// timestamp maps onto the local clock and the Journal can close spans whose
// endpoints were stamped on different machines:
//
//   - cross-site input latency: the peer pressed a button (their frame G,
//     taking effect at frame G+lag under local lag) and we executed frame
//     G+lag some time later. Executed(G+lag) - RemotePressed(G+lag).
//   - execution skew: both sites began frame F; the difference of the two
//     begin instants, on one clock, is the live version of the paper's
//     sub-10 ms skew requirement.
//   - one-way network latency: our receive instant minus the peer's send
//     instant.
//
// The package imports only internal/obs (for the histograms the derived
// latencies feed); core, transport and flight import span, never the
// reverse.
package span

import (
	"sync"
	"time"

	"retrolock/internal/obs"
)

// Span is the lifecycle record of one input frame. Every field except Frame
// and Retransmits is an instant in nanoseconds since the session epoch, on
// the local clock (remote instants are mapped through the offset estimate
// before stamping); 0 means "not observed". Stamps are first-wins: once set,
// a field never changes, which is what makes the derived observations
// (latency, skew) fire exactly once per frame.
type Span struct {
	Frame int64

	// Local lifecycle.
	Pressed  int64 // local input sampled, buffered for this frame
	Encoded  int64 // serialized into a sync message
	Sent     int64 // handed to the transport
	Executed int64 // this site began executing the frame
	Rendered int64 // this site finished the frame's emulation step

	// Remote lifecycle (as observed here).
	Recv       int64 // first sync message carrying the peer's input arrived
	Merged     int64 // the peer's input was merged into the buffer
	RemoteSend int64 // peer's send instant, mapped to the local clock
	RemoteExec int64 // peer began executing this frame, mapped to local clock
	// RemotePressed is the instant the peer pressed the input that takes
	// effect at this frame (their frame Frame-lag begin), mapped to the
	// local clock. It anchors the true cross-site input latency.
	RemotePressed int64

	// Retransmits counts ARQ retransmissions attributed to this frame's
	// sync traffic.
	Retransmits int64
}

// journalDefaultCap is the default ring size: at 60 FPS, 512 frames is ~8.5 s
// of history — far more than any live derivation needs (lag is ~6 frames).
const journalDefaultCap = 512

// Journal is the per-session span ring. All stamping methods are safe for
// concurrent use (one mutex-guarded slot write, no allocation) and all are
// nil-receiver no-ops, so call sites need no guards.
type Journal struct {
	// Cross observes the end-to-end cross-site input latency (ns): peer
	// press to local execution. Nil to disable.
	Cross *obs.Histogram
	// Local observes the local input latency (ns): own press to own
	// execution — the local-lag cost, lag/60 s by construction.
	Local *obs.Histogram
	// Net observes the one-way wire latency (ns): peer send to local
	// receive, through the offset estimate.
	Net *obs.Histogram
	// Skew observes |local frame begin - remote frame begin| (ns) for each
	// frame both sites are known to have executed — the paper's skew, live.
	Skew *obs.Histogram

	epoch time.Time
	mask  int64

	mu       sync.Mutex
	buf      []Span
	lastSent int64 // newest frame ever stamped Sent; ARQ retransmits attribute here
	stamped  int64 // total stamp calls that landed (diagnostics)
}

// NewJournal builds a journal whose ring holds capacity spans (rounded up to
// a power of two, minimum 64; <= 0 selects the 512-slot default). epoch
// anchors every stamp; use the session clock's start.
func NewJournal(epoch time.Time, capacity int) *Journal {
	if capacity <= 0 {
		capacity = journalDefaultCap
	}
	c := 64
	for c < capacity {
		c <<= 1
	}
	return &Journal{epoch: epoch, mask: int64(c - 1), buf: make([]Span, c), lastSent: -1}
}

// Epoch returns the instant all stamps count from.
func (j *Journal) Epoch() time.Time {
	if j == nil {
		return time.Time{}
	}
	return j.epoch
}

// Cap reports the ring capacity in spans.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.buf)
}

// ns converts a local instant to stamp form. The zero instant would collide
// with "unset", so it clamps to 1 — a nanosecond of bias nobody can measure.
func (j *Journal) ns(at time.Time) int64 {
	v := at.Sub(j.epoch).Nanoseconds()
	if v <= 0 {
		v = 1
	}
	return v
}

// slot returns the ring slot for frame, claiming (zeroing) it when the frame
// is newer than the resident span, or nil when the frame is so old its slot
// has been reused by a later one.
func (j *Journal) slot(frame int64) *Span {
	s := &j.buf[frame&j.mask]
	if s.Frame != frame {
		if s.Frame > frame {
			return nil
		}
		*s = Span{Frame: frame}
	}
	return s
}

// observe feeds a derived duration to a histogram; non-positive durations
// (clock-offset noise) are dropped rather than recorded as zeros.
func observe(h *obs.Histogram, v int64) {
	if h != nil && v > 0 {
		h.Observe(v)
	}
}

// observeAbs feeds |v| to a histogram, keeping zero: a zero skew is a real,
// excellent measurement, not noise.
func observeAbs(h *obs.Histogram, v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = -v
	}
	h.Observe(v)
}

// StampPressed marks the local input for frame as sampled at at.
func (j *Journal) StampPressed(frame int64, at time.Time) {
	if j == nil {
		return
	}
	t := j.ns(at)
	j.mu.Lock()
	j.pressedLocked(frame, t)
	j.mu.Unlock()
}

func (j *Journal) pressedLocked(frame, t int64) {
	if s := j.slot(frame); s != nil && s.Pressed == 0 {
		s.Pressed = t
		j.stamped++
	}
}

// StampSendRange marks frames from..to (inclusive) as encoded and sent at
// at. Sync messages carry a contiguous window of frames, so one call covers
// the whole message under a single lock acquisition. It also advances the
// retransmission attribution point: subsequent ARQ retransmits count against
// the newest frame sent.
func (j *Journal) StampSendRange(from, to int64, at time.Time) {
	if j == nil || to < from {
		return
	}
	t := j.ns(at)
	j.mu.Lock()
	j.sendRangeLocked(from, to, t)
	j.mu.Unlock()
}

func (j *Journal) sendRangeLocked(from, to, t int64) {
	for f := from; f <= to; f++ {
		s := j.slot(f)
		if s == nil {
			continue
		}
		if s.Encoded == 0 {
			s.Encoded = t
		}
		if s.Sent == 0 {
			s.Sent = t
			j.stamped++
		}
	}
	if to > j.lastSent {
		j.lastSent = to
	}
}

// StampRecv marks the peer's input for frame as received and merged at at,
// with the peer's send instant already mapped to the local clock
// (remoteSendNs, ns since epoch; <= 0 when no offset estimate exists yet).
// It observes the one-way network latency when the mapping is available.
func (j *Journal) StampRecv(frame int64, at time.Time, remoteSendNs int64) {
	if j == nil {
		return
	}
	t := j.ns(at)
	j.mu.Lock()
	j.recvLocked(frame, t, remoteSendNs)
	j.mu.Unlock()
}

func (j *Journal) recvLocked(frame, t, remoteSendNs int64) {
	if s := j.slot(frame); s != nil && s.Recv == 0 {
		s.Recv = t
		s.Merged = t
		if remoteSendNs > 0 {
			s.RemoteSend = remoteSendNs
			observe(j.Net, t-remoteSendNs)
		}
		j.stamped++
	}
}

// StampExecuted marks this site as having begun executing frame at at. It
// closes every derived measurement whose other endpoint is already stamped:
// local latency (own press), cross-site latency (peer press) and execution
// skew (peer begin).
func (j *Journal) StampExecuted(frame int64, at time.Time) {
	if j == nil {
		return
	}
	t := j.ns(at)
	j.mu.Lock()
	j.executedLocked(frame, t)
	j.mu.Unlock()
}

func (j *Journal) executedLocked(frame, t int64) {
	if s := j.slot(frame); s != nil && s.Executed == 0 {
		s.Executed = t
		if s.Pressed != 0 {
			observe(j.Local, t-s.Pressed)
		}
		if s.RemotePressed != 0 {
			observe(j.Cross, t-s.RemotePressed)
		}
		if s.RemoteExec != 0 {
			observeAbs(j.Skew, t-s.RemoteExec)
		}
		j.stamped++
	}
}

// StampRendered marks this site as having completed frame's emulation step.
func (j *Journal) StampRendered(frame int64, at time.Time) {
	if j == nil {
		return
	}
	t := j.ns(at)
	j.mu.Lock()
	j.renderedLocked(frame, t)
	j.mu.Unlock()
}

func (j *Journal) renderedLocked(frame, t int64) {
	if s := j.slot(frame); s != nil && s.Rendered == 0 {
		s.Rendered = t
		j.stamped++
	}
}

// StampRemoteExec records that the peer began executing frame at remoteNs
// (already mapped to the local clock). Under local lag, the input the peer
// pressed while beginning frame takes effect at frame+lag, so the same
// instant anchors RemotePressed(frame+lag) — the start of the cross-site
// input journey. Both derived observations fire here when this stamp is the
// later of the pair.
func (j *Journal) StampRemoteExec(frame int64, remoteNs int64, lag int64) {
	if j == nil || remoteNs <= 0 {
		return
	}
	j.mu.Lock()
	j.remoteExecLocked(frame, remoteNs, lag)
	j.mu.Unlock()
}

func (j *Journal) remoteExecLocked(frame, remoteNs, lag int64) {
	if s := j.slot(frame); s != nil && s.RemoteExec == 0 {
		s.RemoteExec = remoteNs
		if s.Executed != 0 {
			observeAbs(j.Skew, s.Executed-s.RemoteExec)
		}
		j.stamped++
	}
	if lag > 0 {
		if p := j.slot(frame + lag); p != nil && p.RemotePressed == 0 {
			p.RemotePressed = remoteNs
			if p.Executed != 0 {
				observe(j.Cross, p.Executed-p.RemotePressed)
			}
		}
	}
}

// Retransmit attributes one ARQ segment retransmission (at at) to the newest
// frame this journal has seen sent — ARQ sits below frame numbering, so the
// most recent sync window is the best available owner.
func (j *Journal) Retransmit(at time.Time) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.lastSent >= 0 {
		if s := j.slot(j.lastSent); s != nil {
			s.Retransmits++
		}
	}
	j.mu.Unlock()
}

// Stamped reports how many stamping calls landed in a live slot (diagnostic;
// it counts first-wins hits, not every call).
func (j *Journal) Stamped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stamped
}

// Get returns a copy of the span for frame and whether its slot is still
// resident.
func (j *Journal) Get(frame int64) (Span, bool) {
	if j == nil {
		return Span{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.buf[frame&j.mask]
	if s.Frame != frame || (s == Span{Frame: frame}) {
		return Span{}, false
	}
	return s, true
}

// Spans returns a copy of every resident span in frame order. It allocates —
// use it from export paths (flight bundles, tests), never the frame loop.
func (j *Journal) Spans() []Span {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Span, 0, len(j.buf))
	// The ring is frame-indexed, not rotation-ordered: resident frames are
	// some window [lo, hi] with hi-lo < len(buf). Find the minimum resident
	// frame and walk forward from its slot.
	lo, found := int64(0), false
	for i := range j.buf {
		s := &j.buf[i]
		if (*s == Span{}) {
			continue
		}
		if !found || s.Frame < lo {
			lo, found = s.Frame, true
		}
	}
	if !found {
		return out
	}
	for f := lo; f < lo+int64(len(j.buf)); f++ {
		s := j.buf[f&j.mask]
		if s.Frame == f && (s != Span{}) {
			out = append(out, s)
		}
	}
	return out
}
