package simnet

import (
	"testing"
	"time"

	"retrolock/internal/vclock"
)

var epoch = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)

// poll spins in virtual time until the endpoint yields a datagram or the
// deadline passes.
func poll(v *vclock.Virtual, ep *Endpoint, deadline time.Duration) (Datagram, bool) {
	limit := v.Now().Add(deadline)
	for {
		if d, ok := ep.TryRecv(); ok {
			return d, true
		}
		if v.Now().After(limit) {
			return Datagram{}, false
		}
		v.Sleep(100 * time.Microsecond)
	}
}

func TestDeliveryWithConstantDelay(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")
	n.SetLinkBoth("a", "b", ConstantDelay(30*time.Millisecond))

	done := v.Go(func() {
		if err := a.SendTo("b", []byte("hello")); err != nil {
			t.Errorf("SendTo: %v", err)
		}
		v.Sleep(29 * time.Millisecond)
		if _, ok := b.TryRecv(); ok {
			t.Error("packet arrived before the link delay elapsed")
		}
		v.Sleep(2 * time.Millisecond)
		d, ok := b.TryRecv()
		if !ok {
			t.Fatal("packet not delivered after the link delay")
		}
		if string(d.Payload) != "hello" || d.From != "a" {
			t.Errorf("got %q from %q, want %q from %q", d.Payload, d.From, "hello", "a")
		}
	})
	<-done
}

func TestPayloadIsCopied(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")

	done := v.Go(func() {
		buf := []byte("original")
		if err := a.SendTo("b", buf); err != nil {
			t.Errorf("SendTo: %v", err)
		}
		copy(buf, "CLOBBER!")
		d, ok := poll(v, b, time.Second)
		if !ok {
			t.Fatal("packet not delivered")
		}
		if string(d.Payload) != "original" {
			t.Errorf("payload = %q, want %q (send must copy)", d.Payload, "original")
		}
	})
	<-done
}

func TestSendToUnknownAddress(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	done := v.Go(func() {
		if err := a.SendTo("nowhere", []byte("x")); err != ErrNoRoute {
			t.Errorf("SendTo unknown = %v, want ErrNoRoute", err)
		}
	})
	<-done
}

func TestDoubleBindFails(t *testing.T) {
	n := New(vclock.NewVirtual(epoch))
	if _, err := n.Bind("a"); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if _, err := n.Bind("a"); err == nil {
		t.Fatal("second Bind of same address succeeded, want error")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")
	b.SetQueueCap(3)

	done := v.Go(func() {
		for i := 0; i < 10; i++ {
			if err := a.SendTo("b", []byte{byte(i)}); err != nil {
				t.Errorf("SendTo: %v", err)
			}
		}
		v.Sleep(10 * time.Millisecond)
		got := 0
		for {
			if _, ok := b.TryRecv(); !ok {
				break
			}
			got++
		}
		if got != 3 {
			t.Errorf("received %d datagrams, want 3 (queue cap)", got)
		}
		_, _, dropped := b.Stats()
		if dropped != 7 {
			t.Errorf("dropped = %d, want 7", dropped)
		}
	})
	<-done
}

func TestFIFOWithinEqualDelay(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")
	done := v.Go(func() {
		for i := 0; i < 20; i++ {
			if err := a.SendTo("b", []byte{byte(i)}); err != nil {
				t.Errorf("SendTo: %v", err)
			}
			v.Sleep(time.Millisecond)
		}
		v.Sleep(10 * time.Millisecond)
		for i := 0; i < 20; i++ {
			d, ok := b.TryRecv()
			if !ok {
				t.Fatalf("missing datagram %d", i)
			}
			if int(d.Payload[0]) != i {
				t.Fatalf("datagram %d carried %d; reordered despite equal delay", i, d.Payload[0])
			}
		}
	})
	<-done
}

func TestCloseUnbindsAndDropsInFlight(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")
	n.SetLink("a", "b", ConstantDelay(20*time.Millisecond))

	done := v.Go(func() {
		if err := a.SendTo("b", []byte("in-flight")); err != nil {
			t.Errorf("SendTo: %v", err)
		}
		if err := b.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		v.Sleep(50 * time.Millisecond)
		if _, ok := b.TryRecv(); ok {
			t.Error("received a packet that arrived after Close")
		}
		if err := a.SendTo("b", []byte("post-close")); err != ErrNoRoute {
			t.Errorf("SendTo after peer Close = %v, want ErrNoRoute", err)
		}
		if err := b.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
		// Address becomes reusable.
		if _, err := n.Bind("b"); err != nil {
			t.Errorf("rebinding closed address: %v", err)
		}
	})
	<-done
}

func TestSendOnClosedEndpoint(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	n.MustBind("b")
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	done := v.Go(func() {
		if err := a.SendTo("b", []byte("x")); err != ErrClosed {
			t.Errorf("SendTo on closed = %v, want ErrClosed", err)
		}
	})
	<-done
}

// dropAll is a Shaper that loses every packet.
type dropAll struct{}

func (dropAll) Plan(time.Time, int) []time.Duration { return nil }

// dupShaper duplicates every packet with two distinct delays.
type dupShaper struct{}

func (dupShaper) Plan(time.Time, int) []time.Duration {
	return []time.Duration{time.Millisecond, 2 * time.Millisecond}
}

func TestShaperDropAndDuplicate(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")

	n.SetLink("a", "b", dropAll{})
	done := v.Go(func() {
		if err := a.SendTo("b", []byte("gone")); err != nil {
			t.Errorf("SendTo: %v", err)
		}
		v.Sleep(20 * time.Millisecond)
		if _, ok := b.TryRecv(); ok {
			t.Error("dropAll shaper delivered a packet")
		}

		n.SetLink("a", "b", dupShaper{})
		if err := a.SendTo("b", []byte("twice")); err != nil {
			t.Errorf("SendTo: %v", err)
		}
		v.Sleep(20 * time.Millisecond)
		count := 0
		for {
			if _, ok := b.TryRecv(); !ok {
				break
			}
			count++
		}
		if count != 2 {
			t.Errorf("received %d copies, want 2", count)
		}
	})
	<-done
}

func TestMinDelayEnforced(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")
	n.SetLink("a", "b", ConstantDelay(0)) // asks for instant delivery

	done := v.Go(func() {
		if err := a.SendTo("b", []byte("x")); err != nil {
			t.Errorf("SendTo: %v", err)
		}
		if _, ok := b.TryRecv(); ok {
			t.Error("packet visible at the send instant; MinDelay not enforced")
		}
		v.Sleep(MinDelay)
		if _, ok := b.TryRecv(); !ok {
			t.Error("packet not delivered after MinDelay")
		}
	})
	<-done
}

func TestStatsCounters(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")
	done := v.Go(func() {
		for i := 0; i < 5; i++ {
			if err := a.SendTo("b", []byte{1}); err != nil {
				t.Errorf("SendTo: %v", err)
			}
		}
		v.Sleep(time.Millisecond)
		sent, _, _ := a.Stats()
		_, delivered, _ := b.Stats()
		if sent != 5 || delivered != 5 {
			t.Errorf("sent=%d delivered=%d, want 5/5", sent, delivered)
		}
	})
	<-done
}

// dupCorruptShaper duplicates every packet and corrupts exactly the second
// copy, to probe the per-copy corruption path.
type dupCorruptShaper struct{ calls int }

func (s *dupCorruptShaper) Plan(time.Time, int) []time.Duration {
	return []time.Duration{time.Millisecond, 2 * time.Millisecond}
}

func (s *dupCorruptShaper) Corrupt(p []byte) ([]byte, bool) {
	s.calls++
	if s.calls%2 == 0 {
		cp := append([]byte(nil), p...)
		cp[0] ^= 0x01
		return cp, true
	}
	return p, false
}

func TestCorrupterAppliedPerDeliveredCopy(t *testing.T) {
	v := vclock.NewVirtual(epoch)
	n := New(v)
	a := n.MustBind("a")
	b := n.MustBind("b")
	n.SetLink("a", "b", &dupCorruptShaper{})

	payload := []byte("hello")
	done := v.Go(func() {
		if err := a.SendTo("b", payload); err != nil {
			t.Errorf("SendTo: %v", err)
		}
		v.Sleep(10 * time.Millisecond)
		first, ok := b.TryRecv()
		if !ok || string(first.Payload) != "hello" {
			t.Fatalf("first copy = %q/%v, want intact hello", first.Payload, ok)
		}
		second, ok := b.TryRecv()
		if !ok {
			t.Fatal("second copy missing")
		}
		want := append([]byte(nil), []byte("hello")...)
		want[0] ^= 0x01
		if string(second.Payload) != string(want) {
			t.Fatalf("second copy = %q, want single-bit-flipped %q", second.Payload, want)
		}
	})
	<-done
	if string(payload) != "hello" {
		t.Errorf("sender's buffer mutated to %q; corruption must act on copies", payload)
	}
}
