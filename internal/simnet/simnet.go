// Package simnet provides an in-process datagram network.
//
// It plays the role of the physical LAN + Netem box in the paper's testbed
// (§4): endpoints exchange UDP-like datagrams whose delivery is shaped by a
// pluggable per-direction Shaper (see internal/netem). Running it over a
// virtual clock makes the paper's sixty-second experiments execute in
// milliseconds and bit-reproducibly; running it over the real clock turns it
// into an in-memory loopback with live traffic shaping.
//
// Semantics mirror UDP over a raw link: datagrams may be dropped (by the
// shaper, or when a receive queue overflows), duplicated, and reordered;
// they are never truncated, and they are only corrupted when the link's
// shaper implements the optional Corrupter extension (the chaos harness's
// bit-error model — real UDP's checksum is modelled separately, by
// transport.NewChecksum).
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"retrolock/internal/vclock"
)

// MinDelay is the smallest one-way delivery delay the network imposes even
// when a shaper asks for less. A strictly positive floor keeps virtual-time
// runs deterministic (same-instant actors must not communicate, see vclock)
// and matches the paper's assumption that even a LAN round trip costs under
// one millisecond.
const MinDelay = 50 * time.Microsecond

// DefaultQueueCap is the default receive-queue capacity of an endpoint, in
// datagrams. It approximates an OS socket buffer: packets arriving at a full
// queue are dropped silently, exactly like UDP.
const DefaultQueueCap = 512

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("simnet: endpoint closed")

// ErrNoRoute is returned when sending to an address nothing is bound to.
var ErrNoRoute = errors.New("simnet: no such destination")

// Shaper decides how a single datagram travels one direction of a link.
type Shaper interface {
	// Plan returns the delivery offsets, relative to the send instant, at
	// which copies of the datagram reach the destination. An empty slice
	// drops the packet; more than one entry duplicates it. Offsets below
	// MinDelay are clamped up by the network.
	Plan(now time.Time, size int) []time.Duration
}

// Corrupter is an optional Shaper extension modelling in-flight bit errors.
// When a link's shaper implements it, Corrupt is invoked once per delivered
// copy of each datagram. It must not mutate p; to corrupt the copy it
// returns a fresh, mutated slice and true, otherwise p itself and false.
type Corrupter interface {
	Corrupt(p []byte) ([]byte, bool)
}

// ConstantDelay is a Shaper that delivers every packet exactly once after a
// fixed one-way delay.
type ConstantDelay time.Duration

// Plan implements Shaper.
func (c ConstantDelay) Plan(time.Time, int) []time.Duration {
	return []time.Duration{time.Duration(c)}
}

// Network is a fabric of named endpoints. All methods are safe for
// concurrent use.
type Network struct {
	sched vclock.Scheduler

	mu    sync.Mutex
	nodes map[string]*Endpoint
	links map[route]Shaper

	// freeFlights recycles in-flight datagram records (payload buffer and
	// the delivery closure, bound once per record) so a steady-state
	// simulation sends without allocating.
	freeFlights []*flight
}

// flight is one datagram copy travelling the network: destination, source,
// its own payload buffer, and a pre-bound delivery closure handed to the
// scheduler. After delivery the record returns to the network's free list.
type flight struct {
	net  *Network
	dst  *Endpoint
	from string
	buf  []byte
	run  func()
}

func (f *flight) deliver() {
	f.dst.enqueue(f.from, f.buf, f.net.sched.Now())
	f.dst = nil
	f.net.mu.Lock()
	f.net.freeFlights = append(f.net.freeFlights, f)
	f.net.mu.Unlock()
}

func (n *Network) newFlight() *flight {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l := len(n.freeFlights); l > 0 {
		f := n.freeFlights[l-1]
		n.freeFlights[l-1] = nil
		n.freeFlights = n.freeFlights[:l-1]
		return f
	}
	f := &flight{net: n}
	f.run = f.deliver
	return f
}

type route struct{ src, dst string }

// New creates a network that schedules deliveries on sched.
func New(sched vclock.Scheduler) *Network {
	return &Network{
		sched: sched,
		nodes: make(map[string]*Endpoint),
		links: make(map[route]Shaper),
	}
}

// Bind attaches a new endpoint to addr. Binding an address twice is an error.
func (n *Network) Bind(addr string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; ok {
		return nil, fmt.Errorf("simnet: address %q already bound", addr)
	}
	ep := &Endpoint{net: n, addr: addr, queueCap: DefaultQueueCap}
	n.nodes[addr] = ep
	return ep, nil
}

// MustBind is Bind for tests and examples where the address is known free.
func (n *Network) MustBind(addr string) *Endpoint {
	ep, err := n.Bind(addr)
	if err != nil {
		panic(err)
	}
	return ep
}

// SetLink installs shaper for packets flowing src -> dst. Passing nil
// restores the default (MinDelay constant delay). Each direction of a
// bidirectional link is configured independently, matching Netem's
// per-interface shaping in the paper's testbed.
func (n *Network) SetLink(src, dst string, shaper Shaper) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := route{src, dst}
	if shaper == nil {
		delete(n.links, r)
		return
	}
	n.links[r] = shaper
}

// SetLinkBoth installs the same shaper in both directions between a and b.
// Note that stateful shapers (e.g. rate limiters) should not be shared
// between directions; use SetLink with two instances instead.
func (n *Network) SetLinkBoth(a, b string, shaper Shaper) {
	n.SetLink(a, b, shaper)
	n.SetLink(b, a, shaper)
}

func (n *Network) shaperFor(src, dst string) Shaper {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.links[route{src, dst}]; ok {
		return s
	}
	return ConstantDelay(MinDelay)
}

func (n *Network) lookup(addr string) (*Endpoint, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.nodes[addr]
	return ep, ok
}

func (n *Network) unbind(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// Datagram is a received packet together with its source address and the
// instant it was delivered into the receive queue. Payload borrows the
// endpoint's receive ring (see Endpoint.TryRecv for the validity window).
type Datagram struct {
	From    string
	Payload []byte
	At      time.Time
}

// recvSlot is one position of an endpoint's receive ring. Its payload buffer
// is owned by the ring and reused once the slot is overwritten by a later
// delivery.
type recvSlot struct {
	from string
	at   time.Time
	buf  []byte
}

// Endpoint is one bound address on a Network.
type Endpoint struct {
	net  *Network
	addr string

	mu          sync.Mutex
	ring        []recvSlot // receive queue: ring[head..head+count)
	head, count int
	queueCap    int
	closed      bool

	sent      int
	delivered int
	dropped   int // dropped at this endpoint's receive queue
}

// Addr returns the address the endpoint is bound to.
func (e *Endpoint) Addr() string { return e.addr }

// SetQueueCap overrides the receive-queue capacity (datagrams). Values < 1
// are treated as 1.
func (e *Endpoint) SetQueueCap(c int) {
	if c < 1 {
		c = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queueCap = c
}

// SendTo transmits payload to dst through the link's shaper. The payload is
// copied, so the caller may reuse the buffer immediately. Packets to unknown
// destinations return ErrNoRoute; packets dropped in flight or at the remote
// queue are silently lost, like UDP.
func (e *Endpoint) SendTo(dst string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.sent++
	e.mu.Unlock()

	dstEp, ok := e.net.lookup(dst)
	if !ok {
		return ErrNoRoute
	}
	shaper := e.net.shaperFor(e.addr, dst)
	var offsets []time.Duration
	var one [1]time.Duration
	if cd, ok := shaper.(ConstantDelay); ok {
		// Fast path for the default (and most common) shaper: skip the
		// Plan call and its one-element slice allocation.
		one[0] = time.Duration(cd)
		offsets = one[:]
	} else {
		offsets = shaper.Plan(e.net.sched.Now(), len(payload))
	}
	if len(offsets) == 0 {
		return nil // shaped away: lost in flight
	}
	corrupter, _ := shaper.(Corrupter)
	for _, off := range offsets {
		if off < MinDelay {
			off = MinDelay
		}
		// Each delivered copy rides its own flight record with its own
		// payload copy (taken before SendTo returns, so the caller may
		// reuse its buffer), and may be corrupted independently; Corrupt
		// never mutates its argument.
		p := payload
		if corrupter != nil {
			p, _ = corrupter.Corrupt(payload)
		}
		f := e.net.newFlight()
		f.dst = dstEp
		f.from = e.addr
		f.buf = append(f.buf[:0], p...)
		e.net.sched.ScheduleAfter(off, f.run)
	}
	return nil
}

func (e *Endpoint) enqueue(from string, payload []byte, at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.count >= e.queueCap {
		e.dropped++
		return
	}
	if e.count == len(e.ring) {
		e.growLocked()
	}
	s := &e.ring[(e.head+e.count)%len(e.ring)]
	s.from = from
	s.at = at
	s.buf = append(s.buf[:0], payload...)
	e.count++
	e.delivered++
}

// growLocked doubles the receive ring (starting at 16 slots), unwrapping the
// queued entries to the front. The ring never exceeds the point where count
// can reach queueCap, checked by the caller.
func (e *Endpoint) growLocked() {
	n := 2 * len(e.ring)
	if n < 16 {
		n = 16
	}
	fresh := make([]recvSlot, n)
	for i := 0; i < e.count; i++ {
		fresh[i] = e.ring[(e.head+i)%len(e.ring)]
	}
	e.ring = fresh
	e.head = 0
}

// TryRecv pops the oldest pending datagram without blocking. The second
// result is false when the queue is empty. Receiving on a closed endpoint
// still drains packets that were queued before Close.
//
// The returned payload borrows the receive ring's buffer: it stays valid
// until its slot is overwritten by a later delivery (at least ring-size
// receives away). Callers that retain a payload beyond their current receive
// loop must copy it.
func (e *Endpoint) TryRecv() (Datagram, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.count == 0 {
		return Datagram{}, false
	}
	s := &e.ring[e.head]
	d := Datagram{From: s.from, Payload: s.buf, At: s.at}
	e.head = (e.head + 1) % len(e.ring)
	e.count--
	return d, true
}

// Pending reports how many datagrams are queued for receipt.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Stats reports lifetime counters: datagrams sent from this endpoint,
// delivered into its queue, and dropped at its queue (overflow or closed).
func (e *Endpoint) Stats() (sent, delivered, dropped int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent, e.delivered, e.dropped
}

// Close unbinds the endpoint. In-flight packets addressed to it are dropped
// on arrival.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.net.unbind(e.addr)
	return nil
}
