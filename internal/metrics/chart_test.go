package metrics

import (
	"strings"
	"testing"
)

func TestChartBasicShape(t *testing.T) {
	out := Chart("Test Figure", []string{"0", "", "100"}, 6,
		ChartSeries{Name: "frame time", Marker: '*', Points: []float64{16.7, 16.7, 30}},
		ChartSeries{Name: "deviation", Marker: 'o', Points: []float64{0, 5, 20}},
	)
	if !strings.Contains(out, "Test Figure") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* = frame time") || !strings.Contains(out, "o = deviation") {
		t.Error("missing legend")
	}
	if strings.Count(out, "*") < 3+1 { // 3 points + legend glyph
		t.Errorf("expected 3 plotted '*' points:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 8 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
	// The max (30) must appear on the top plot row, the min (0) at the bottom.
	if !strings.Contains(lines[1], "*") {
		t.Errorf("max point not on the top row:\n%s", out)
	}
	if !strings.Contains(out, "0") {
		t.Error("x label missing")
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("Empty", nil, 5)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestChartFlatSeries(t *testing.T) {
	out := Chart("Flat", nil, 5, ChartSeries{Name: "c", Marker: 'x', Points: []float64{5, 5, 5}})
	if strings.Count(out, "x") < 3 {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestChartMinimumHeight(t *testing.T) {
	out := Chart("Tiny", nil, 1, ChartSeries{Name: "c", Marker: 'x', Points: []float64{1, 2}})
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) < 5 {
		t.Errorf("height not clamped up:\n%s", out)
	}
}
