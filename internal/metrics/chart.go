package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ASCII chart rendering, so cmd/experiment can draw the paper's figures
// directly in a terminal next to the numeric tables.

// ChartSeries is one plotted line.
type ChartSeries struct {
	Name   string
	Marker byte // glyph used for this series' points
	Points []float64
}

// Chart renders one or more series over a shared x axis as a fixed-size
// ASCII plot. xlabels supplies tick labels for selected x positions (may be
// nil); height is the number of plot rows (minimum 4).
func Chart(title string, xlabels []string, height int, series ...ChartSeries) string {
	if height < 4 {
		height = 4
	}
	width := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Points) > width {
			width = len(s.Points)
		}
		for _, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if width == 0 || math.IsInf(lo, 1) {
		return title + "\n  (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	const colsPerPoint = 3
	plotW := width * colsPerPoint
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotW))
	}
	for _, s := range series {
		for i, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			col := i*colsPerPoint + 1
			grid[row][col] = s.Marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r := range grid {
		val := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", val, grid[r])
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", plotW))
	if len(xlabels) > 0 {
		lab := make([]byte, plotW)
		for i := range lab {
			lab[i] = ' '
		}
		for i, l := range xlabels {
			if l == "" || i >= width {
				continue
			}
			pos := i * colsPerPoint
			for j := 0; j < len(l) && pos+j < plotW; j++ {
				lab[pos+j] = l[j]
			}
		}
		fmt.Fprintf(&b, "%8s  %s\n", "", string(lab))
	}
	var legend []string
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c = %s", s.Marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%8s  %s\n", "", strings.Join(legend, ", "))
	}
	return b.String()
}
