package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySeriesIsZero(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.MeanAbsDeviation() != 0 || s.AbsMean() != 0 ||
		s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series must report zeros everywhere")
	}
	if s.Summarize().N != 0 {
		t.Error("empty summary N != 0")
	}
}

func TestMeanAndMAD(t *testing.T) {
	// Paper footnote 10's definition, hand-computed:
	// values 10, 20, 30 -> mean 20, MAD = (10+0+10)/3.
	s := NewSeries(3)
	for _, v := range []float64{10, 20, 30} {
		s.Add(v)
	}
	if !almost(s.Mean(), 20) {
		t.Errorf("Mean = %v, want 20", s.Mean())
	}
	if !almost(s.MeanAbsDeviation(), 20.0/3) {
		t.Errorf("MAD = %v, want 6.66", s.MeanAbsDeviation())
	}
}

func TestAbsMean(t *testing.T) {
	// Paper footnote 11: mean of |x|. Values -5, 5, 10 -> 20/3.
	var s Series
	for _, v := range []float64{-5, 5, 10} {
		s.Add(v)
	}
	if !almost(s.AbsMean(), 20.0/3) {
		t.Errorf("AbsMean = %v, want 6.66", s.AbsMean())
	}
}

func TestAddDurationUsesMilliseconds(t *testing.T) {
	var s Series
	s.AddDuration(16700 * time.Microsecond)
	if !almost(s.Mean(), 16.7) {
		t.Errorf("Mean = %v, want 16.7 (ms)", s.Mean())
	}
}

func TestMinMaxPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
}

func TestStdDevKnownValue(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !almost(s.StdDev(), 2) { // classic textbook example
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	var s Series
	s.Add(1)
	vals := s.Values()
	vals[0] = 999
	if s.Mean() != 1 {
		t.Error("Values() aliases internal storage")
	}
}

func TestFPS(t *testing.T) {
	if got := FPS(16.666666667); math.Abs(got-60) > 0.01 {
		t.Errorf("FPS(16.67) = %v, want ~60", got)
	}
	if got := FPS(20); math.Abs(got-50) > 0.01 {
		t.Errorf("FPS(20) = %v, want 50", got)
	}
	if FPS(0) != 0 || FPS(-5) != 0 {
		t.Error("FPS of non-positive frame time must be 0")
	}
}

// Property: MAD is always <= StdDev and >= 0 (Jensen's inequality relation).
func TestPropertyMADBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
		}
		if s.Len() == 0 {
			return true
		}
		mad, sd := s.MeanAbsDeviation(), s.StdDev()
		return mad >= -1e-9 && mad <= sd+1e-6*math.Abs(sd)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Min <= Mean <= Max, and Min <= every percentile <= Max.
func TestPropertyOrderStats(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
		}
		if s.Len() == 0 {
			return true
		}
		pct := s.Percentile(float64(p % 101))
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6 &&
			s.Min() <= pct && pct <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AbsMean of non-negative data equals Mean.
func TestPropertyAbsMeanNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(math.Abs(math.Mod(v, 1e9)))
		}
		return almost(s.AbsMean(), s.Mean())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var s Series
	s.Add(16.7)
	str := s.Summarize().String()
	if str == "" {
		t.Error("empty summary string")
	}
}
