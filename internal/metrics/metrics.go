// Package metrics implements the statistics the paper's evaluation reports.
//
// Figure 1 plots the average frame time and the *average deviation* of frame
// times (the paper's footnote 10: mean of absolute deviations from the mean).
// Figure 2 plots the *absolute average* of cross-site frame-time differences
// (footnote 11: mean of absolute values). Both are provided here, together
// with the usual descriptive statistics used by the extended experiments.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series is an ordered collection of sample values. The zero value is ready
// to use.
type Series struct {
	vals []float64
}

// NewSeries creates a Series with preallocated capacity.
func NewSeries(capacity int) *Series {
	return &Series{vals: make([]float64, 0, capacity)}
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// AddDuration appends a duration sample in milliseconds, the unit of every
// figure in the paper.
func (s *Series) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.vals) }

// Values returns a copy of the samples.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// MeanAbsDeviation returns the paper's "average deviation" (footnote 10):
// the mean of |x_i - mean|.
func (s *Series) MeanAbsDeviation() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		sum += math.Abs(v - m)
	}
	return sum / float64(len(s.vals))
}

// AbsMean returns the paper's "absolute average" (footnote 11): the mean of
// |x_i|.
func (s *Series) AbsMean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += math.Abs(v)
	}
	return sum / float64(len(s.vals))
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.vals)))
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy. An empty series yields 0.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Summary bundles the statistics one experiment point reports.
type Summary struct {
	N       int
	Mean    float64
	MAD     float64 // mean absolute deviation (Figure 1's "average deviation")
	AbsMean float64 // mean of absolute values (Figure 2's metric)
	StdDev  float64
	Min     float64
	Max     float64
	P99     float64
}

// Summarize computes a Summary of the series.
func (s *Series) Summarize() Summary {
	return Summary{
		N:       s.Len(),
		Mean:    s.Mean(),
		MAD:     s.MeanAbsDeviation(),
		AbsMean: s.AbsMean(),
		StdDev:  s.StdDev(),
		Min:     s.Min(),
		Max:     s.Max(),
		P99:     s.Percentile(99),
	}
}

// String renders the summary compactly in milliseconds.
func (m Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms mad=%.2fms absmean=%.2fms sd=%.2fms min=%.2fms max=%.2fms p99=%.2fms",
		m.N, m.Mean, m.MAD, m.AbsMean, m.StdDev, m.Min, m.Max, m.P99)
}

// FPS converts a mean frame time in milliseconds to frames per second.
func FPS(meanFrameMillis float64) float64 {
	if meanFrameMillis <= 0 {
		return 0
	}
	return 1000 / meanFrameMillis
}
