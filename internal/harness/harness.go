// Package harness reproduces the paper's testbed (§4) in virtual time: two
// gaming sites running the same ROM under the sync module, connected through
// a Netem-equivalent emulated link, with a time server on a sub-millisecond
// LAN recording every frame's begin time. One 3600-frame experiment — a
// wall-clock minute on the paper's hardware — completes in well under a
// second and is bit-reproducible for a given seed.
package harness

import (
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/metrics"
	"retrolock/internal/netem"
	"retrolock/internal/obs"
	"retrolock/internal/rom/games"
	"retrolock/internal/simnet"
	"retrolock/internal/span"
	"retrolock/internal/timeserver"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
	"retrolock/internal/vm"
)

// Defaults matching the paper's setup.
const (
	DefaultFrames    = 3600 // one minute at 60 FPS (§4.1)
	DefaultProcDelay = 10 * time.Millisecond
	DefaultEmulation = 2 * time.Millisecond
	DefaultTimeout   = 60 * time.Second
)

// Config describes one experiment run.
type Config struct {
	// RTT is the emulated round-trip time; each direction gets RTT/2.
	RTT time.Duration
	// Jitter spreads one-way delays uniformly by ±Jitter.
	Jitter time.Duration
	// Loss is the per-direction packet loss probability.
	Loss float64
	// BurstLoss clusters the same loss rate into Gilbert-Elliott bursts.
	BurstLoss bool
	// MeanBurst is the expected burst length in packets (default 4).
	MeanBurst float64
	// Duplicate is the per-direction duplication probability.
	Duplicate float64
	// ProcDelay models the sender-thread scheduling quantum (§4.2,
	// default 10 ms => ~5 ms average submit-to-wire delay).
	ProcDelay time.Duration
	// NoProcDelay disables ProcDelay (for ablations); otherwise a zero
	// ProcDelay means the default.
	NoProcDelay bool

	// Frames is the experiment length (default 3600, as in §4.1).
	Frames int
	// Game selects the ROM (default "pong"; §4 notes the game does not
	// affect the results).
	Game string
	// Seed drives the netem PRNGs and the synthetic player inputs.
	Seed int64

	// BufFrame, CFPS, SendInterval, PollInterval override the sync
	// module's defaults (zero keeps each default).
	BufFrame     int
	CFPS         int
	SendInterval time.Duration
	PollInterval time.Duration

	// StartOffset delays site 1's start (startup-skew experiments).
	StartOffset time.Duration
	// SkipHandshake bypasses the session-control protocol so StartOffset
	// reaches the sync algorithms unabsorbed.
	SkipHandshake bool
	// NaivePacer replaces Algorithm 4 with the naive EndFrame-only
	// baseline on every site.
	NaivePacer bool

	// AdaptiveLag enables the adaptive-local-lag ablation (§4.2 argues
	// for the fixed 100 ms lag) with bounds [1, 18] and a 15 ms margin.
	AdaptiveLag bool

	// RTTSwing, when positive, alternates the link between RTT and
	// RTT+RTTSwing every SwingEvery (default 5 s) — the fluctuating
	// network §4.2's adaptive-lag discussion worries about.
	RTTSwing   time.Duration
	SwingEvery time.Duration

	// EmulationTime is the virtual CPU cost of one Transition call.
	EmulationTime time.Duration

	// Observers adds that many spectator sites (journal extension),
	// connected to both players.
	Observers int

	// Rollback replaces the lockstep sync with the timewarp baseline the
	// paper rejects in §5: zero input lag, repeat-last prediction, full
	// savestate rollback on misprediction. Handshake is skipped (timesync
	// absorbs startup skew) and observers are unsupported in this mode.
	Rollback bool
	// PredictionWindow bounds rollback speculation (default 8 frames).
	PredictionWindow int

	// ARQ routes the lockstep traffic through the reliable in-order
	// transport baseline ("TCP-like", §3.1) instead of raw datagrams.
	ARQ bool
	// ARQRto is the baseline's retransmission timeout (default 200 ms).
	ARQRto time.Duration

	// WaitTimeout bounds each SyncInput wait (default 60 s virtual).
	WaitTimeout time.Duration

	// TraceEvents, when positive, attaches a fixed-capacity frame-event
	// tracer of that many slots to each site; the rings survive the run in
	// Result.Traces. Zero disables tracing (histograms and counters are
	// always collected — they are allocation-free).
	TraceEvents int

	// HealthEvery is how often (in frames) site 0's health SLO engine
	// closes and grades a window (default 60 — once per second of frames).
	// Negative disables the engine; lockstep mode only.
	HealthEvery int

	// FlightDir is where each site's black-box recorder auto-writes its
	// incident bundle ("" falls back to the RETROLOCK_FLIGHT_DIR
	// environment variable; recorders are attached to lockstep sessions
	// either way, and also registered as /debug/flight/dump producers on
	// Result.Registry).
	FlightDir string
	// StallThreshold is the SyncInput wait past which a session declares a
	// liveness-stall incident (0 disables the trigger).
	StallThreshold time.Duration

	// Capture, when set, records every datagram both sites put on (or take
	// off) the emulated WAN into this RKCP recorder — below the ARQ layer,
	// so the capture shows retransmissions and duplicates as they crossed
	// the wire. Virtual-time runs produce bit-identical captures for
	// identical configs.
	Capture *capture.Recorder
}

func (c Config) withDefaults() Config {
	if c.Frames == 0 {
		c.Frames = DefaultFrames
	}
	if c.Game == "" {
		c.Game = "pong"
	}
	if c.ProcDelay == 0 && !c.NoProcDelay {
		c.ProcDelay = DefaultProcDelay
	}
	if c.NoProcDelay {
		c.ProcDelay = 0
	}
	if c.EmulationTime == 0 {
		c.EmulationTime = DefaultEmulation
	}
	if c.WaitTimeout == 0 {
		c.WaitTimeout = DefaultTimeout
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 60
	}
	return c
}

// SiteResult aggregates one site's measurements.
type SiteResult struct {
	// FrameTimes summarizes consecutive frame-begin differences in
	// milliseconds: Mean is the paper's "average frame time", MAD its
	// "average deviation" (Figure 1).
	FrameTimes metrics.Summary
	// FPS is 1000/mean frame time.
	FPS float64
	// Stats are the sync module's protocol counters.
	Stats core.Stats
	// Rollback carries the timewarp baseline's overhead counters (zero
	// value in lockstep mode).
	Rollback core.RollbackStats
	// FinalHash is the machine state hash after the last frame.
	FinalHash uint64
	// Frames is the number of frames the site executed.
	Frames int
	// LagChanges, AvgLag and FinalLag describe the adaptive-lag ablation
	// (zero values when the lag is fixed).
	LagChanges int
	AvgLag     float64
	FinalLag   int
}

// Result is the outcome of one experiment.
type Result struct {
	// Sites holds the players first, then any observers.
	Sites []SiteResult
	// Sync summarizes the per-frame begin-time differences between the
	// two players, in milliseconds; AbsMean is Figure 2's metric.
	Sync metrics.Summary
	// Converged reports whether every site ended with an identical
	// machine state hash (logical consistency).
	Converged bool
	// Elapsed is the virtual duration of the whole run.
	Elapsed time.Duration
	// Registry holds every series the run collected — the per-site sync
	// counters the SiteResults above were read from, plus frame-time /
	// stall / RTT histograms per site, the cross-site skew histogram
	// (retrolock_skew_ns), and the link emulators' counters. Serve it live
	// with obs.Serve or scrape it with Registry.Snapshot.
	Registry *obs.Registry
	// Traces holds each site's frame-event ring when Config.TraceEvents >
	// 0 (entries nil otherwise).
	Traces []*obs.Tracer
	// Flight holds each lockstep site's black-box recorder (entries nil in
	// rollback mode). FlightBundles lists incident bundle paths the run
	// auto-wrote, if any.
	Flight        []*flight.Recorder
	FlightBundles []string
	// Journals holds each lockstep site's input-journey span journal
	// (entries nil in rollback mode) — the source of the cross-site input
	// latency, one-way net latency and live skew histograms.
	Journals []*span.Journal
	// Health is site 0's final SLO verdict and HealthWindow its last
	// evaluated window (zero values in rollback mode or when
	// Config.HealthEvery < 0).
	Health       obs.HealthState
	HealthWindow obs.HealthSignals
}

// InputLatencyMs summarizes one site's input-journey quantiles in
// milliseconds. Values are histogram bucket upper bounds; 0 means the leg
// recorded no observations.
type InputLatencyMs struct {
	// CrossP50/CrossP90 are the end-to-end cross-site input latency (peer
	// press to local execution) — the number the paper's 140 ms feasibility
	// argument is really about.
	CrossP50, CrossP90 float64
	// LocalP50 is the own-press-to-own-execution latency, ~lag/CFPS by
	// construction.
	LocalP50 float64
	// NetP50 is the one-way wire latency via the clock-offset estimate.
	NetP50 float64
	// SkewP90 is the per-frame cross-site execution skew.
	SkewP90 float64
}

// InputLatency reads a site's journey quantiles out of its journal.
func (r *Result) InputLatency(site int) InputLatencyMs {
	var out InputLatencyMs
	if site < 0 || site >= len(r.Journals) || r.Journals[site] == nil {
		return out
	}
	j := r.Journals[site]
	q := func(h *obs.Histogram, p float64) float64 {
		if h == nil || h.Count() == 0 {
			return 0
		}
		return float64(h.Quantile(p)) / 1e6
	}
	out.CrossP50, out.CrossP90 = q(j.Cross, 0.5), q(j.Cross, 0.9)
	out.LocalP50 = q(j.Local, 0.5)
	out.NetP50 = q(j.Net, 0.5)
	out.SkewP90 = q(j.Skew, 0.9)
	return out
}

// PlayerInput synthesizes a deterministic pseudo-random pad byte for a
// player at a frame. Button mashing at full frame rate is a worst case for
// input traffic; §4 notes the game (and hence the inputs) does not affect
// the timing results. Exported so other virtual-time drivers (the chaos
// harness) feed the exact same input streams.
func PlayerInput(seed int64, site, frame int) uint16 {
	h := fnv.New64a()
	var b [24]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
		b[8+i] = byte(site >> (8 * i))
		b[16+i] = byte(frame >> (8 * i))
	}
	h.Write(b[:])
	return uint16(h.Sum64()) & 0x00FF << (8 * (site & 1))
}

// machineUnderTest wraps the console with the configured per-frame
// emulation cost in virtual time.
type machineUnderTest struct {
	*vm.Console
	clock vclock.Clock
	cost  time.Duration
}

func (m *machineUnderTest) StepFrame(input uint16) {
	if m.cost > 0 {
		m.clock.Sleep(m.cost)
	}
	m.Console.StepFrame(input)
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start0 := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	v := vclock.NewVirtual(start0)
	net := simnet.New(v)

	// The emulated WAN between the two players.
	linkCfg := func(seed int64) netem.Config {
		return netem.Config{
			Delay:     cfg.RTT / 2,
			Jitter:    cfg.Jitter,
			ProcDelay: cfg.ProcDelay,
			Loss:      cfg.Loss,
			BurstLoss: cfg.BurstLoss,
			MeanBurst: cfg.MeanBurst,
			Duplicate: cfg.Duplicate,
			Seed:      seed,
		}
	}
	reg := obs.NewRegistry()
	fwdEm, revEm := netem.Install(net, "site0", "site1", linkCfg(cfg.Seed), linkCfg(cfg.Seed+1))
	netem.RegisterLinkMetrics(reg, obs.Labels{"dir": "fwd"}, fwdEm)
	netem.RegisterLinkMetrics(reg, obs.Labels{"dir": "rev"}, revEm)
	skewHist := reg.NewHistogram(core.MetricSkewNs, nil, "per-frame cross-site begin-time skew")

	if cfg.RTTSwing > 0 {
		every := cfg.SwingEvery
		if every <= 0 {
			every = 5 * time.Second
		}
		swing := func(on bool) netem.Config {
			c := linkCfg(cfg.Seed + 100)
			if on {
				c.Delay = (cfg.RTT + cfg.RTTSwing) / 2
			}
			return c
		}
		var schedule func(at time.Duration, high bool)
		schedule = func(at time.Duration, high bool) {
			v.ScheduleAfter(at, func() {
				fwd := swing(high)
				rev := fwd
				rev.Seed++
				net.SetLink("site0", "site1", netem.New(fwd))
				net.SetLink("site1", "site0", netem.New(rev))
				schedule(every, !high)
			})
		}
		schedule(every, true)
	}

	conn0, conn1, err := transport.SimPair(net, "site0", "site1")
	if err != nil {
		return nil, err
	}
	conns := []transport.Conn{conn0, conn1}
	if cfg.Capture != nil {
		// Tap below ARQ: the capture is the wire's view, not the session's.
		for i := range conns {
			conns[i] = transport.NewTap(conns[i], v, i, cfg.Capture)
		}
	}
	var arqs [2]*transport.ARQConn
	if cfg.ARQ {
		rto := cfg.ARQRto
		for i, lower := range []transport.Conn{conns[0], conns[1]} {
			arqs[i] = transport.NewARQ(lower, v, rto)
			conns[i] = arqs[i]
			transport.RegisterARQMetrics(reg, obs.SiteLabels(i), arqs[i])
		}
	}

	// The measurement LAN: default links (50 µs one way, "under 1 ms"
	// round trip, §4.1.2).
	tsEP := net.MustBind("timeserver")
	ts := timeserver.NewServer(tsEP, v)
	tsDone := v.Go(ts.Run)
	reporters := make([]*simnet.Endpoint, 0, 2+cfg.Observers)

	totalSites := 2 + cfg.Observers
	if cfg.Rollback && cfg.Observers > 0 {
		return nil, fmt.Errorf("harness: the rollback baseline does not support observers")
	}
	type siteState struct {
		session  *core.Session
		rollback *core.RollbackSession
		machine  *machineUnderTest
		err      error
	}
	sites := make([]*siteState, totalSites)
	traces := make([]*obs.Tracer, 0, totalSites)
	journals := make([]*span.Journal, totalSites)
	var so0 *obs.SessionObs

	// Observer wiring: each observer connects to both players.
	obsConns := make([][2]transport.Conn, cfg.Observers) // observer side
	playerObs := make([][]core.Peer, 2)                  // player side peers
	for o := 0; o < cfg.Observers; o++ {
		for p := 0; p < 2; p++ {
			a, b, err := transport.SimPair(net,
				fmt.Sprintf("obs%d->p%d", o, p), fmt.Sprintf("p%d->obs%d", p, o))
			if err != nil {
				return nil, err
			}
			obsConns[o][p] = a
			playerObs[p] = append(playerObs[p], core.Peer{Site: 2 + o, Conn: b})
		}
	}

	game, err := games.Load(cfg.Game)
	if err != nil {
		return nil, err
	}
	flightDir := cfg.FlightDir
	if flightDir == "" {
		flightDir = os.Getenv("RETROLOCK_FLIGHT_DIR")
	}
	romImage := game.Encode()
	recorders := make([]*flight.Recorder, totalSites)

	mkMachine := func() (*machineUnderTest, error) {
		console, err := game.Boot()
		if err != nil {
			return nil, err
		}
		return &machineUnderTest{Console: console, clock: v, cost: cfg.EmulationTime}, nil
	}

	for site := 0; site < totalSites; site++ {
		m, err := mkMachine()
		if err != nil {
			return nil, err
		}
		var peers []core.Peer
		if site < 2 {
			peers = append(peers, core.Peer{Site: 1 - site, Conn: conns[site]})
			peers = append(peers, playerObs[site]...)
		} else {
			o := site - 2
			peers = []core.Peer{
				{Site: 0, Conn: obsConns[o][0]},
				{Site: 1, Conn: obsConns[o][1]},
			}
		}
		sc := core.Config{
			SiteNo:       site,
			NumPlayers:   2,
			BufFrame:     cfg.BufFrame,
			CFPS:         cfg.CFPS,
			SendInterval: cfg.SendInterval,
			PollInterval: cfg.PollInterval,
			WaitTimeout:  cfg.WaitTimeout,
		}
		st := &siteState{machine: m}
		so := core.NewSessionObs(reg, site, cfg.TraceEvents, start0)
		traces = append(traces, so.Tracer)
		if site == 0 {
			so0 = so
		}
		if cfg.Rollback {
			rs, err := core.NewRollbackSession(sc, v, v.Now(), m, peers, cfg.PredictionWindow)
			if err != nil {
				return nil, err
			}
			rs.SetObs(so)
			core.RegisterRollbackMetrics(reg, obs.SiteLabels(site), rs)
			st.rollback = rs
		} else {
			var opts []core.SessionOption
			if cfg.NaivePacer {
				opts = append(opts, core.WithPacer(core.NewNaiveTimer(sc, v)))
			}
			if cfg.AdaptiveLag {
				opts = append(opts, core.WithAdaptiveLag(core.AdaptiveLag{
					Min: 1, Max: 18, Margin: 15 * time.Millisecond, Every: 60,
				}))
			}
			ses, err := core.NewSession(sc, v, v.Now(), m, peers, opts...)
			if err != nil {
				return nil, err
			}
			ses.SetObs(so)
			journals[site] = core.NewInputJourney(reg, site, start0)
			ses.SetJournal(journals[site])
			core.RegisterSessionMetrics(reg, obs.SiteLabels(site), ses)
			// The black box rides along on every lockstep session: bounded
			// rings, allocation-free steady state, and a live dump endpoint
			// on the run's registry.
			rec := flight.NewRecorder(m, flight.Options{
				Site:           site,
				Game:           cfg.Game,
				ROM:            romImage,
				Config:         ses.Sync().Config(),
				Dir:            flightDir,
				Registry:       reg,
				Tracer:         so.Tracer,
				Journal:        journals[site],
				StallThreshold: cfg.StallThreshold,
			})
			ses.SetFlightRecorder(rec)
			reg.AddDump(fmt.Sprintf("site%d", site), rec.Dump)
			recorders[site] = rec
			st.session = ses
		}
		if site < 2 && arqs[site] != nil {
			arqs[site].SetTracer(site, so.Tracer)
			arqs[site].SetJournal(journals[site])
		}
		sites[site] = st

		rep := net.MustBind(fmt.Sprintf("reporter%d", site))
		reporters = append(reporters, rep)
	}

	// The site-0 health SLO engine grades the feasibility signals — median
	// RTT vs the 140 ms cliff, skew quantile, mean frame time, ARQ
	// retransmit rate — one window every HealthEvery frames.
	var health *obs.Health
	if !cfg.Rollback && cfg.HealthEvery > 0 {
		src := obs.HealthSources{
			FrameTime: so0.FrameTime,
			RTT:       so0.RTT,
			Skew:      journals[0].Skew,
			Frames:    func() int64 { return int64(sites[0].machine.FrameCount()) },
		}
		if arqs[0] != nil {
			src.Retransmits = func() int64 { return int64(arqs[0].Retransmissions()) }
		}
		health = obs.NewHealth(obs.HealthConfig{}, src)
		if traces[0] != nil {
			health.SetTracer(0, traces[0])
		}
		health.Register(reg, 0)
	}

	start := v.Now()
	done := make([]<-chan struct{}, totalSites)
	for site := 0; site < totalSites; site++ {
		site := site
		st := sites[site]
		rep := reporters[site]
		done[site] = v.Go(func() {
			if site == 1 && cfg.StartOffset > 0 {
				v.Sleep(cfg.StartOffset)
			}
			localInput := func(f int) uint16 {
				// Frame begin: report to the time server (§4.1).
				_ = rep.SendTo("timeserver", timeserver.EncodeReport(site, f))
				return PlayerInput(cfg.Seed, site, f)
			}
			if site >= 2 {
				localInput = func(f int) uint16 {
					_ = rep.SendTo("timeserver", timeserver.EncodeReport(site, f))
					return 0
				}
			}
			if st.rollback != nil {
				st.err = st.rollback.RunFrames(cfg.Frames, localInput, nil)
				if st.err == nil {
					st.err = st.rollback.Settle(5 * time.Second)
				}
				return
			}
			if !cfg.SkipHandshake {
				if err := st.session.Handshake(10 * time.Second); err != nil {
					st.err = err
					return
				}
			}
			var onFrame func(core.FrameInfo)
			if site == 0 && health != nil {
				onFrame = func(fi core.FrameInfo) {
					if fi.Frame > 0 && fi.Frame%cfg.HealthEvery == 0 {
						health.Evaluate(v.Now())
					}
				}
			}
			st.err = st.session.RunFrames(cfg.Frames, localInput, onFrame)
			st.session.Drain(5 * time.Second)
		})
	}
	for site := 0; site < totalSites; site++ {
		<-done[site]
	}
	elapsed := v.Now().Sub(start)
	// Flush the last reports into the server before stopping it.
	flushed := v.Go(func() { v.Sleep(10 * time.Millisecond); ts.Stop() })
	<-flushed
	<-tsDone

	for site, st := range sites {
		if st.err != nil {
			return nil, fmt.Errorf("harness: site %d: %w", site, st.err)
		}
	}

	res := &Result{Elapsed: elapsed, Converged: true, Registry: reg, Traces: traces,
		Flight: recorders, Journals: journals}
	if health != nil {
		res.Health = health.State()
		res.HealthWindow = health.Signals()
	}
	for _, rec := range recorders {
		if rec != nil && rec.BundlePath() != "" {
			res.FlightBundles = append(res.FlightBundles, rec.BundlePath())
		}
	}
	// Every protocol counter below is read back out of the registry — the
	// same series a live scrape of obs.Serve would see — rather than from
	// the session structs directly.
	final := reg.Snapshot()
	for site, st := range sites {
		var frameTimes metrics.Series
		for _, d := range ts.FrameTimes(site) {
			frameTimes.AddDuration(d)
		}
		sl := obs.SiteLabels(site)
		sr := SiteResult{
			FrameTimes: frameTimes.Summarize(),
			FinalHash:  st.machine.StateHash(),
			Frames:     st.machine.FrameCount(),
			Stats:      core.SyncStatsFromSnapshot(final, sl),
		}
		if st.rollback != nil {
			sr.Rollback = core.RollbackStatsFromSnapshot(final, sl)
		} else {
			sr.LagChanges, sr.AvgLag = st.session.LagStats()
			sr.FinalLag = st.session.Sync().Lag()
		}
		sr.FPS = metrics.FPS(sr.FrameTimes.Mean)
		res.Sites = append(res.Sites, sr)
		if st.machine.StateHash() != sites[0].machine.StateHash() {
			res.Converged = false
		}
	}
	var sync metrics.Series
	for _, d := range ts.SyncDiffs(0, 1) {
		sync.AddDuration(d)
		if d < 0 {
			d = -d
		}
		skewHist.Observe(int64(d))
	}
	res.Sync = sync.Summarize()
	return res, nil
}

// PaperCalibration returns the configuration that best reproduces the
// paper's absolute numbers (Figures 1 and 2).
//
// The only knob that differs from the clean defaults is ProcDelay = 40 ms
// (uniform [0, 40), 20 ms average per packet). The paper's testbed pays,
// per §4.2, ~10 ms average outbound buffering + ~5 ms sender-thread quantum,
// and symmetric costs on the receive path, plus Windows timer granularity —
// our virtual testbed has none of that noise, so it is reintroduced here as
// a per-packet processing delay. With it the observed behaviour matches the
// paper: average frame-time deviation ≈ 0 up to RTT 90 ms, < 5 ms through
// RTT 140 ms, a sharp jump just past it (we measure the knee at 150-160 ms
// vs the paper's 140 ms), cross-site difference < 11 ms below the knee, and
// ~50 FPS by RTT 200 ms.
func PaperCalibration() Config {
	return Config{ProcDelay: 40 * time.Millisecond}
}

// MultiRun repeats a configuration across n seeds (cfg.Seed, cfg.Seed+1000,
// ...) and reports the spread of the headline metrics — the error bars the
// paper's single-run figures lack.
type MultiRun struct {
	FrameTime metrics.Summary // per-seed mean frame times (ms), site 0
	Deviation metrics.Summary // per-seed frame-time MADs (ms), site 0
	Sync      metrics.Summary // per-seed cross-site abs-mean (ms)
	Converged bool            // true only if every run converged
}

// RunSeeds executes cfg under n different seeds.
func RunSeeds(cfg Config, n int) (*MultiRun, error) {
	if n < 1 {
		n = 1
	}
	out := &MultiRun{Converged: true}
	var ft, dev, sync metrics.Series
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("harness: seed %d: %w", c.Seed, err)
		}
		ft.Add(res.Sites[0].FrameTimes.Mean)
		dev.Add(res.Sites[0].FrameTimes.MAD)
		sync.Add(res.Sync.AbsMean)
		if !res.Converged {
			out.Converged = false
		}
	}
	out.FrameTime = ft.Summarize()
	out.Deviation = dev.Summarize()
	out.Sync = sync.Summarize()
	return out, nil
}

// SweepPoint is one RTT of a parameter sweep.
type SweepPoint struct {
	RTT    time.Duration
	Result *Result
}

// PaperRTTs returns the paper's sweep: 0-200 ms in 10 ms steps, then
// 250-400 ms in 50 ms steps (§4.1).
func PaperRTTs() []time.Duration {
	var out []time.Duration
	for ms := 0; ms <= 200; ms += 10 {
		out = append(out, time.Duration(ms)*time.Millisecond)
	}
	for ms := 250; ms <= 400; ms += 50 {
		out = append(out, time.Duration(ms)*time.Millisecond)
	}
	return out
}

// SweepRTT runs base at every RTT. onPoint, when non-nil, observes each
// completed point (for progress output).
func SweepRTT(base Config, rtts []time.Duration, onPoint func(SweepPoint)) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(rtts))
	for _, rtt := range rtts {
		cfg := base
		cfg.RTT = rtt
		res, err := Run(cfg)
		if err != nil {
			return out, fmt.Errorf("harness: rtt %v: %w", rtt, err)
		}
		p := SweepPoint{RTT: rtt, Result: res}
		out = append(out, p)
		if onPoint != nil {
			onPoint(p)
		}
	}
	return out, nil
}

// SweepLoss runs base at every loss rate (journal extension experiment).
func SweepLoss(base Config, losses []float64, onPoint func(float64, *Result)) (map[float64]*Result, error) {
	out := make(map[float64]*Result, len(losses))
	for _, loss := range losses {
		cfg := base
		cfg.Loss = loss
		res, err := Run(cfg)
		if err != nil {
			return out, fmt.Errorf("harness: loss %.3f: %w", loss, err)
		}
		out[loss] = res
		if onPoint != nil {
			onPoint(loss, res)
		}
	}
	return out, nil
}
