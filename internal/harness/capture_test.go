package harness

import (
	"bytes"
	"testing"
	"time"

	"retrolock/internal/capture"
)

// TestGoldenCaptureDeterministic is the golden-capture property: two
// harness runs of the same config — a lossy link with ARQ retransmissions,
// so the capture is not just a clean periodic stream — must produce
// bit-identical RKCP captures and identical final frame hashes. This is
// what makes a checked-in .rkcp trace a reproducible experiment input
// rather than a one-off log.
func TestGoldenCaptureDeterministic(t *testing.T) {
	run := func() (enc []byte, hashes [2]uint64) {
		rec := capture.NewRecorder(1<<16, 1<<22)
		cfg := Config{
			RTT:     40 * time.Millisecond,
			Jitter:  3 * time.Millisecond,
			Loss:    0.02,
			Frames:  240,
			ARQ:     true,
			Seed:    5,
			Capture: rec,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("run did not converge")
		}
		if rec.Dropped() != 0 {
			t.Fatalf("capture dropped %d records; raise the recorder budgets", rec.Dropped())
		}
		c := rec.Snapshot(capture.Meta{Game: cfg.Game, Notes: "golden capture determinism"})
		if len(c.Records) == 0 {
			t.Fatal("capture is empty")
		}
		for i := range res.Sites[:2] {
			hashes[i] = res.Sites[i].FinalHash
		}
		return c.Encode(), hashes
	}

	encA, hashA := run()
	encB, hashB := run()
	if hashA != hashB {
		t.Errorf("final frame hashes differ across identical runs: %x vs %x", hashA, hashB)
	}
	if !bytes.Equal(encA, encB) {
		t.Errorf("RKCP captures differ across identical runs (%d vs %d bytes)", len(encA), len(encB))
	}
	// The capture must decode, and both directions of both sites must be
	// represented (sends and deliveries at site 0 and site 1).
	c, err := capture.Decode(encA)
	if err != nil {
		t.Fatalf("capture does not decode: %v", err)
	}
	var seen [2][2]int // [site][dir]
	for i := range c.Records {
		r := &c.Records[i]
		if r.Site > 1 {
			t.Fatalf("record %d: impossible site %d", i, r.Site)
		}
		seen[r.Site][r.Dir]++
	}
	for site := 0; site < 2; site++ {
		for dir := 0; dir < 2; dir++ {
			if seen[site][dir] == 0 {
				t.Errorf("no records for site %d dir %s", site, capture.Dir(dir))
			}
		}
	}
	if c.Span() <= 0 {
		t.Errorf("capture span %v, want positive", c.Span())
	}
}
