package harness

import (
	"math"
	"testing"
	"time"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestLowLatencyRunsAtSixtyFPS(t *testing.T) {
	res := run(t, Config{RTT: 40 * time.Millisecond, Frames: 600, Seed: 1})
	if !res.Converged {
		t.Fatal("replicas diverged")
	}
	for site, sr := range res.Sites {
		if sr.FPS < 58 || sr.FPS > 62 {
			t.Errorf("site %d FPS = %.1f, want ~60", site, sr.FPS)
		}
		if sr.FrameTimes.MAD > 2 {
			t.Errorf("site %d frame-time MAD = %.2fms, want ~0 at RTT 40ms", site, sr.FrameTimes.MAD)
		}
		if sr.Frames != 600 {
			t.Errorf("site %d executed %d frames, want 600", site, sr.Frames)
		}
		// The input ring retires delivered-and-acked frames, so even a
		// full run keeps only a small sliding window buffered.
		if sr.Stats.BufPeak <= 0 || sr.Stats.BufPeak >= 64 {
			t.Errorf("site %d input-window peak = %d frames, want within (0, 64)", site, sr.Stats.BufPeak)
		}
	}
	if res.Sync.AbsMean > 10 {
		t.Errorf("cross-site sync = %.2fms, want < 10ms at RTT 40ms", res.Sync.AbsMean)
	}
}

func TestHighLatencySlowsTheGame(t *testing.T) {
	low := run(t, Config{RTT: 40 * time.Millisecond, Frames: 400, Seed: 2})
	high := run(t, Config{RTT: 300 * time.Millisecond, Frames: 400, Seed: 2})
	if !high.Converged {
		t.Fatal("high-latency run diverged")
	}
	if high.Sites[0].FrameTimes.Mean <= low.Sites[0].FrameTimes.Mean+5 {
		t.Errorf("RTT 300ms frame time %.2fms vs RTT 40ms %.2fms; game did not slow down",
			high.Sites[0].FrameTimes.Mean, low.Sites[0].FrameTimes.Mean)
	}
	if high.Sites[0].FPS >= 55 {
		t.Errorf("FPS at RTT 300ms = %.1f, want well below 60", high.Sites[0].FPS)
	}
}

func TestLossyLinkStillConverges(t *testing.T) {
	res := run(t, Config{RTT: 60 * time.Millisecond, Loss: 0.10, Frames: 500, Seed: 3})
	if !res.Converged {
		t.Fatal("replicas diverged under 10% loss")
	}
	if res.Sites[0].Stats.InputsDup == 0 {
		t.Error("no retransmissions observed despite loss")
	}
}

func TestObserversConverge(t *testing.T) {
	res := run(t, Config{RTT: 50 * time.Millisecond, Frames: 300, Seed: 4, Observers: 2})
	if len(res.Sites) != 4 {
		t.Fatalf("sites = %d, want 4 (2 players + 2 observers)", len(res.Sites))
	}
	if !res.Converged {
		t.Fatal("observer replicas diverged")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := run(t, Config{RTT: 120 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.02, Frames: 300, Seed: 42})
	b := run(t, Config{RTT: 120 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.02, Frames: 300, Seed: 42})
	if a.Sites[0].FrameTimes.Mean != b.Sites[0].FrameTimes.Mean ||
		a.Sync.AbsMean != b.Sync.AbsMean ||
		a.Sites[0].FinalHash != b.Sites[0].FinalHash {
		t.Fatalf("identical seeds produced different results:\n%+v\n%+v", a.Sites[0], b.Sites[0])
	}
	c := run(t, Config{RTT: 120 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.02, Frames: 300, Seed: 43})
	if a.Sync.AbsMean == c.Sync.AbsMean && a.Sites[0].FrameTimes.MAD == c.Sites[0].FrameTimes.MAD {
		t.Error("different seeds produced identical timing statistics (suspicious)")
	}
}

func TestNaivePacerPenalizesEarlierSite(t *testing.T) {
	base := Config{
		RTT:           80 * time.Millisecond,
		Frames:        500,
		Seed:          5,
		StartOffset:   120 * time.Millisecond,
		SkipHandshake: true,
	}
	naive := base
	naive.NaivePacer = true
	withA4 := run(t, base)
	withNaive := run(t, naive)
	// Site 0 (the earlier site) suffers with the naive pacer; Algorithm 4
	// shifts the adjustment onto the slave and stabilizes it.
	if withA4.Sites[0].FrameTimes.MAD > withNaive.Sites[0].FrameTimes.MAD {
		t.Errorf("earlier site MAD: algorithm4=%.2fms naive=%.2fms; master/slave pacing should be smoother",
			withA4.Sites[0].FrameTimes.MAD, withNaive.Sites[0].FrameTimes.MAD)
	}
	if !withNaive.Converged || !withA4.Converged {
		t.Error("ablation runs diverged")
	}
}

func TestARQBaselineConverges(t *testing.T) {
	res := run(t, Config{RTT: 60 * time.Millisecond, Frames: 300, Seed: 6, ARQ: true})
	if !res.Converged {
		t.Fatal("ARQ baseline diverged")
	}
}

func TestARQSuffersUnderLoss(t *testing.T) {
	udp := run(t, Config{RTT: 60 * time.Millisecond, Loss: 0.05, Frames: 400, Seed: 7})
	arq := run(t, Config{RTT: 60 * time.Millisecond, Loss: 0.05, Frames: 400, Seed: 7, ARQ: true})
	if !arq.Converged {
		t.Fatal("ARQ lossy run diverged")
	}
	// Head-of-line blocking: the reliable transport's frame-time tail is
	// worse than the UDP lockstep's under the same loss.
	if arq.Sites[0].FrameTimes.Max < udp.Sites[0].FrameTimes.Max {
		t.Logf("note: ARQ max %.2fms vs UDP max %.2fms", arq.Sites[0].FrameTimes.Max, udp.Sites[0].FrameTimes.Max)
	}
	if arq.Sites[0].FrameTimes.MAD+0.01 < udp.Sites[0].FrameTimes.MAD {
		t.Errorf("ARQ under loss smoother than UDP lockstep (MAD %.3f vs %.3f); HoL blocking missing",
			arq.Sites[0].FrameTimes.MAD, udp.Sites[0].FrameTimes.MAD)
	}
}

func TestSweepRTTProducesMonotonicThreshold(t *testing.T) {
	rtts := []time.Duration{0, 80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond}
	points, err := SweepRTT(Config{Frames: 300, Seed: 8}, rtts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rtts) {
		t.Fatalf("points = %d, want %d", len(points), len(rtts))
	}
	// Below the threshold the frame time stays ~16.7ms; far above it it
	// must grow.
	if m := points[0].Result.Sites[0].FrameTimes.Mean; math.Abs(m-16.7) > 1 {
		t.Errorf("RTT 0 frame time %.2fms, want ~16.7ms", m)
	}
	// At RTT 320ms the equilibrium frame period is roughly
	// (RTT/2 + send delays) / BufFrame ≈ 25ms — clearly degraded.
	if points[3].Result.Sites[0].FrameTimes.Mean < points[0].Result.Sites[0].FrameTimes.Mean+5 {
		t.Errorf("RTT 320ms frame time %.2fms did not degrade vs %.2fms",
			points[3].Result.Sites[0].FrameTimes.Mean, points[0].Result.Sites[0].FrameTimes.Mean)
	}
}

func TestSweepLoss(t *testing.T) {
	out, err := SweepLoss(Config{RTT: 60 * time.Millisecond, Frames: 300, Seed: 9},
		[]float64{0, 0.05}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("results = %d, want 2", len(out))
	}
	for loss, res := range out {
		if !res.Converged {
			t.Errorf("loss %.2f diverged", loss)
		}
	}
}

func TestPaperRTTs(t *testing.T) {
	rtts := PaperRTTs()
	if len(rtts) != 25 {
		t.Fatalf("sweep has %d points, want 25 (0-200/10 + 250-400/50)", len(rtts))
	}
	if rtts[0] != 0 || rtts[20] != 200*time.Millisecond || rtts[len(rtts)-1] != 400*time.Millisecond {
		t.Errorf("sweep endpoints wrong: %v", rtts)
	}
}

func TestAllGamesRunUnderHarness(t *testing.T) {
	for _, game := range []string{"pong", "duel", "tanks"} {
		res := run(t, Config{RTT: 30 * time.Millisecond, Frames: 200, Seed: 10, Game: game})
		if !res.Converged {
			t.Errorf("%s diverged", game)
		}
	}
}

func TestUnknownGameFails(t *testing.T) {
	if _, err := Run(Config{Game: "zork", Frames: 10}); err == nil {
		t.Fatal("unknown game accepted")
	}
}

func TestRollbackBaselineConvergesAndHoldsFPS(t *testing.T) {
	res := run(t, Config{RTT: 80 * time.Millisecond, Frames: 400, Seed: 11, Rollback: true})
	if !res.Converged {
		t.Fatal("rollback replicas diverged")
	}
	s := res.Sites[0]
	if s.FPS < 56 {
		t.Errorf("rollback FPS = %.1f at RTT 80ms, want ~60 (latency hiding)", s.FPS)
	}
	if s.Rollback.Rollbacks == 0 {
		t.Error("no rollbacks recorded; baseline not exercised")
	}
	if s.Rollback.SnapshotBytes == 0 {
		t.Error("no snapshot volume recorded")
	}
}

func TestRollbackRejectsObservers(t *testing.T) {
	if _, err := Run(Config{Frames: 10, Rollback: true, Observers: 1}); err == nil {
		t.Fatal("rollback with observers accepted")
	}
}

// TestSoakChurningNetwork runs a 10-virtual-minute session through rotating
// network regimes (latency jumps, loss bursts) — a stability soak. Skipped
// under -short.
func TestSoakChurningNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	res := run(t, Config{
		RTT:        60 * time.Millisecond,
		RTTSwing:   160 * time.Millisecond,
		SwingEvery: 7 * time.Second,
		Loss:       0.03,
		BurstLoss:  true,
		Jitter:     4 * time.Millisecond,
		Frames:     36000, // 10 minutes at 60 FPS
		Seed:       99,
		Game:       "duel",
	})
	if !res.Converged {
		t.Fatal("soak run diverged")
	}
	for site, s := range res.Sites {
		if s.Frames != 36000 {
			t.Errorf("site %d executed %d frames, want 36000", site, s.Frames)
		}
		if s.FPS < 45 {
			t.Errorf("site %d averaged %.1f FPS across the churn, want >= 45", site, s.FPS)
		}
	}
}

func TestRunSeedsSpread(t *testing.T) {
	mr, err := RunSeeds(Config{RTT: 150 * time.Millisecond, Frames: 400, Seed: 1,
		ProcDelay: 40 * time.Millisecond}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !mr.Converged {
		t.Fatal("a seeded run diverged")
	}
	if mr.FrameTime.N != 3 {
		t.Fatalf("aggregated %d runs, want 3", mr.FrameTime.N)
	}
	// At RTT 150 with the paper calibration the deviation varies by seed;
	// the spread statistics must be sane (non-negative, min <= max).
	if mr.Deviation.Min > mr.Deviation.Max || mr.Deviation.Min < 0 {
		t.Fatalf("deviation spread corrupt: %+v", mr.Deviation)
	}
}

func TestHealthAndInputLatency(t *testing.T) {
	// A comfortable RTT: healthy verdict, cross-site latency dominated by
	// the 100 ms local lag, local latency = lag/CFPS by construction.
	res := run(t, Config{RTT: 40 * time.Millisecond, Frames: 900, Seed: 3})
	if res.Health != 0 { // obs.Healthy
		t.Fatalf("health at RTT 40ms = %v, want healthy (window %+v)", res.Health, res.HealthWindow)
	}
	if res.HealthWindow.Window == 0 {
		t.Fatal("health engine never evaluated a window")
	}
	for site := 0; site < 2; site++ {
		il := res.InputLatency(site)
		if il.LocalP50 < 50 || il.LocalP50 > 300 {
			t.Errorf("site %d local p50 = %.1fms, want ~100ms (the local lag)", site, il.LocalP50)
		}
		if il.CrossP50 < 50 || il.CrossP50 > 300 {
			t.Errorf("site %d cross p50 = %.1fms, want lag-dominated", site, il.CrossP50)
		}
		if il.SkewP90 == 0 {
			t.Errorf("site %d skew p90 = 0, want live skew observations", site)
		}
	}

	// Past the paper's cliff the verdict must not stay healthy.
	far := run(t, Config{RTT: 200 * time.Millisecond, Frames: 900, Seed: 3})
	if far.Health == 0 {
		t.Fatalf("health at RTT 200ms = healthy, want degraded/infeasible (window %+v)", far.HealthWindow)
	}
	// The buckets are powers of two, so p50 may land on the same bound at
	// both RTTs; it must at least not shrink, and the tail must spread.
	if a, b := res.InputLatency(0).CrossP50, far.InputLatency(0).CrossP50; b < a {
		t.Errorf("cross p50 shrank with RTT: %.1fms at 40ms vs %.1fms at 200ms", a, b)
	}
	if a, b := res.InputLatency(0).CrossP90, far.InputLatency(0).CrossP90; b < a {
		t.Errorf("cross p90 shrank with RTT: %.1fms at 40ms vs %.1fms at 200ms", a, b)
	}
}
