package lobby

import (
	"strings"
	"testing"
)

// FuzzLobbyParse throws arbitrary bytes at the two parsers that face the
// network: the server's JOIN parser and the client's reply parser. Neither
// may panic, and anything they accept must obey the protocol invariants.
func FuzzLobbyParse(f *testing.F) {
	f.Add("JOIN abc 0")
	f.Add("JOIN game42 63")
	f.Add("PEER 1 127.0.0.1:9000")
	f.Add("RELAY 00000000000000ff 10.0.0.1:7300")
	f.Add("JOIN  two  spaces ")
	f.Add("join lower 0")
	f.Add("JOIN s -1")
	f.Add("JOIN s 64")
	f.Add("\x00\xff\xfe")
	f.Add(strings.Repeat("A", 300))

	f.Fuzz(func(t *testing.T, msg string) {
		if code, site, ok := parseJoin(msg); ok {
			if site < 0 || site > 63 {
				t.Fatalf("parseJoin(%q) accepted site %d", msg, site)
			}
			if code == "" || strings.ContainsAny(code, " \t\n\r") {
				t.Fatalf("parseJoin(%q) accepted code %q", msg, code)
			}
		}
		if r, ok := parseReply(msg); ok {
			if r.Relay {
				if r.Token == "" {
					t.Fatalf("parseReply(%q) accepted empty token", msg)
				}
			} else if r.Site < 0 || r.Site > 63 {
				t.Fatalf("parseReply(%q) accepted site %d", msg, r.Site)
			}
			if r.Addr == "" || strings.ContainsAny(r.Addr, " \t\n\r") {
				t.Fatalf("parseReply(%q) accepted addr %q", msg, r.Addr)
			}
		}
	})
}
