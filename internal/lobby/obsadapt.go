package lobby

import "retrolock/internal/obs"

// Series names for the rendezvous server.
const (
	MetricJoins          = "retrolock_lobby_joins"
	MetricPeersNotified  = "retrolock_lobby_peers_notified"
	MetricPlaced         = "retrolock_lobby_relay_notified"
	MetricRejected       = "retrolock_lobby_rejected"
	MetricSessionsActive = "retrolock_lobby_sessions_active"
	MetricSessionsAged   = "retrolock_lobby_sessions_expired"
	MetricSessionsCapped = "retrolock_lobby_sessions_capped"
)

// RegisterMetrics publishes the server's counters; every closure snapshots
// under the server mutex, so scrapes are safe while Serve runs.
func RegisterMetrics(r *obs.Registry, s *Server) {
	r.CounterFunc(MetricJoins, nil, "well-formed JOIN requests handled", func() float64 { return float64(s.Stats().Joins) })
	r.CounterFunc(MetricPeersNotified, nil, "PEER replies sent", func() float64 { return float64(s.Stats().PeersNotified) })
	r.CounterFunc(MetricRejected, nil, "datagrams that failed to parse as JOIN", func() float64 { return float64(s.Stats().Rejected) })
	r.CounterFunc(MetricPlaced, nil, "RELAY replies sent", func() float64 { return float64(s.Stats().PlacedNotified) })
	r.GaugeFunc(MetricSessionsActive, nil, "session codes currently pending", func() float64 { return float64(s.Stats().SessionsActive) })
	r.CounterFunc(MetricSessionsAged, nil, "sessions expired by the TTL sweep", func() float64 { return float64(s.Stats().SessionsAged) })
	r.CounterFunc(MetricSessionsCapped, nil, "JOINs dropped at the MaxSessions cap", func() float64 { return float64(s.Stats().SessionsCapped) })
}
