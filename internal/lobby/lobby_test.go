package lobby

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func TestRendezvousPairsTwoClients(t *testing.T) {
	srv := startServer(t)

	type result struct {
		local, peer string
		err         error
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for site := 0; site < 2; site++ {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, p, err := Rendezvous(srv.Addr(), "game42", site, 1-site, 5*time.Second)
			results[site] = result{l, p, err}
		}()
	}
	wg.Wait()
	for site, r := range results {
		if r.err != nil {
			t.Fatalf("site %d: %v", site, r.err)
		}
	}
	// Each site must have learned the other's socket (the local bind is a
	// wildcard address, so compare ports).
	port := func(addr string) string {
		_, p, err := net.SplitHostPort(addr)
		if err != nil {
			t.Fatalf("bad address %q: %v", addr, err)
		}
		return p
	}
	if port(results[0].peer) != port(results[1].local) {
		t.Errorf("site 0 got peer %q, site 1 announced %q", results[0].peer, results[1].local)
	}
	if port(results[1].peer) != port(results[0].local) {
		t.Errorf("site 1 got peer %q, site 0 announced %q", results[1].peer, results[0].local)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	srv := startServer(t)

	done := make(chan error, 1)
	go func() {
		_, _, err := Rendezvous(srv.Addr(), "sessionA", 0, 1, 700*time.Millisecond)
		done <- err
	}()
	// A client of a different session must not pair with sessionA.
	go func() {
		_, _, _ = Rendezvous(srv.Addr(), "sessionB", 1, 0, 700*time.Millisecond)
	}()
	if err := <-done; err == nil {
		t.Fatal("clients of different sessions were paired")
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, msg := range []string{"", "HELLO", "JOIN onlytwo", "JOIN s notanumber", "JOIN s 999"} {
		if _, err := conn.Write([]byte(msg)); err != nil {
			t.Fatal(err)
		}
	}
	// The server must still pair valid clients afterwards.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for site := 0; site < 2; site++ {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[site] = Rendezvous(srv.Addr(), "after-garbage", site, 1-site, 5*time.Second)
		}()
	}
	wg.Wait()
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d after garbage: %v", site, err)
		}
	}
}

func TestRendezvousTimesOutAlone(t *testing.T) {
	srv := startServer(t)
	start := time.Now()
	_, _, err := Rendezvous(srv.Addr(), "lonely", 0, 1, 500*time.Millisecond)
	if err == nil {
		t.Fatal("lonely client paired with nobody")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) < 450*time.Millisecond {
		t.Fatal("returned before the timeout elapsed")
	}
}

func TestThreeSiteSession(t *testing.T) {
	// Two players and an observer all in one session: every client learns
	// the address of every other site it asks for.
	srv := startServer(t)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	// Site 0 waits for site 1; the observer (site 2) waits for site 0.
	pairs := [][2]int{{0, 1}, {1, 0}, {2, 0}}
	for i, p := range pairs {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = Rendezvous(srv.Addr(), "trio", p[0], p[1], 5*time.Second)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestAbandonedSessionsExpire(t *testing.T) {
	srv := startServer(t)
	base := time.Now()
	current := base
	srv.mu.Lock()
	srv.now = func() time.Time { return current }
	srv.mu.Unlock()

	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("JOIN ghost 0")); err != nil {
		t.Fatal(err)
	}
	waitSessions := func(want int) {
		deadline := time.Now().Add(2 * time.Second)
		for {
			srv.mu.Lock()
			n := len(srv.sessions)
			srv.mu.Unlock()
			if n == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("sessions = %d, want %d", n, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitSessions(1)

	// Jump past the TTL; the next join of a different session sweeps it.
	current = base.Add(sessionTTL + time.Minute)
	if _, err := conn.Write([]byte("JOIN fresh 0")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.mu.Lock()
		_, ghost := srv.sessions["ghost"]
		_, fresh := srv.sessions["fresh"]
		srv.mu.Unlock()
		if !ghost && fresh {
			return // expired and replaced, as intended
		}
		if time.Now().After(deadline) {
			t.Fatalf("ghost=%v fresh=%v, want expired/present", ghost, fresh)
		}
		time.Sleep(time.Millisecond)
	}
}
