package lobby

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) *Server {
	return startServerConfig(t, Config{})
}

func startServerConfig(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := ListenConfig("127.0.0.1:0", cfg)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func TestRendezvousPairsTwoClients(t *testing.T) {
	srv := startServer(t)

	type result struct {
		local, peer string
		err         error
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for site := 0; site < 2; site++ {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, p, err := Rendezvous(srv.Addr(), "game42", site, 1-site, 5*time.Second)
			results[site] = result{l, p, err}
		}()
	}
	wg.Wait()
	for site, r := range results {
		if r.err != nil {
			t.Fatalf("site %d: %v", site, r.err)
		}
	}
	// Each site must have learned the other's socket (the local bind is a
	// wildcard address, so compare ports).
	port := func(addr string) string {
		_, p, err := net.SplitHostPort(addr)
		if err != nil {
			t.Fatalf("bad address %q: %v", addr, err)
		}
		return p
	}
	if port(results[0].peer) != port(results[1].local) {
		t.Errorf("site 0 got peer %q, site 1 announced %q", results[0].peer, results[1].local)
	}
	if port(results[1].peer) != port(results[0].local) {
		t.Errorf("site 1 got peer %q, site 0 announced %q", results[1].peer, results[0].local)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	srv := startServer(t)

	done := make(chan error, 1)
	go func() {
		_, _, err := Rendezvous(srv.Addr(), "sessionA", 0, 1, 700*time.Millisecond)
		done <- err
	}()
	// A client of a different session must not pair with sessionA.
	go func() {
		_, _, _ = Rendezvous(srv.Addr(), "sessionB", 1, 0, 700*time.Millisecond)
	}()
	if err := <-done; err == nil {
		t.Fatal("clients of different sessions were paired")
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, msg := range []string{"", "HELLO", "JOIN onlytwo", "JOIN s notanumber", "JOIN s 999"} {
		if _, err := conn.Write([]byte(msg)); err != nil {
			t.Fatal(err)
		}
	}
	// The server must still pair valid clients afterwards.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for site := 0; site < 2; site++ {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[site] = Rendezvous(srv.Addr(), "after-garbage", site, 1-site, 5*time.Second)
		}()
	}
	wg.Wait()
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d after garbage: %v", site, err)
		}
	}
}

func TestRendezvousTimesOutAlone(t *testing.T) {
	srv := startServer(t)
	start := time.Now()
	_, _, err := Rendezvous(srv.Addr(), "lonely", 0, 1, 500*time.Millisecond)
	if err == nil {
		t.Fatal("lonely client paired with nobody")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) < 450*time.Millisecond {
		t.Fatal("returned before the timeout elapsed")
	}
}

func TestThreeSiteSession(t *testing.T) {
	// Two players and an observer all in one session: every client learns
	// the address of every other site it asks for.
	srv := startServer(t)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	// Site 0 waits for site 1; the observer (site 2) waits for site 0.
	pairs := [][2]int{{0, 1}, {1, 0}, {2, 0}}
	for i, p := range pairs {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = Rendezvous(srv.Addr(), "trio", p[0], p[1], 5*time.Second)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

// TestIdleSessionsExpireWithoutTraffic is the regression test for the sweep
// starvation bug: expiry used to run only inside the datagram handler, so a
// lobby whose socket went quiet kept abandoned sessions forever. The ticker
// sweep must collect them with no further traffic at all.
func TestIdleSessionsExpireWithoutTraffic(t *testing.T) {
	srv := startServerConfig(t, Config{TTL: 50 * time.Millisecond, SweepEvery: 10 * time.Millisecond})

	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("JOIN ghost 0")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().SessionsActive == 1 })

	// Total silence from here on. Only the clock-driven sweep can act.
	waitFor(t, 2*time.Second, func() bool {
		st := srv.Stats()
		return st.SessionsActive == 0 && st.SessionsAged == 1
	})
}

// TestSessionsCapBoundsMap: JOINs that would grow the map past MaxSessions
// are counted and dropped, and space frees up once old entries expire.
func TestSessionsCapBoundsMap(t *testing.T) {
	srv := startServerConfig(t, Config{TTL: time.Hour, SweepEvery: time.Hour, MaxSessions: 3})

	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 8; i++ {
		if _, err := conn.Write([]byte(fmt.Sprintf("JOIN flood-%d 0", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool {
		st := srv.Stats()
		return st.SessionsActive == 3 && st.SessionsCapped == 5
	})
}

func waitFor(t *testing.T, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// fakePlacer is a Placer test double recording every call.
type fakePlacer struct {
	mu       sync.Mutex
	placings int
	rebinds  []string // "token/site/addr"
	released []string
	full     bool
}

func (p *fakePlacer) Place() (Placement, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.full {
		return Placement{}, fmt.Errorf("backend full")
	}
	p.placings++
	return Placement{Token: fmt.Sprintf("%016x", p.placings), Addr: "127.0.0.1:9999"}, nil
}

func (p *fakePlacer) Rebind(token string, site int, addr net.Addr) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rebinds = append(p.rebinds, fmt.Sprintf("%s/%d/%s", token, site, addr))
	return nil
}

func (p *fakePlacer) Release(token string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.released = append(p.released, token)
	return nil
}

func TestRendezvousPlacedPairsTwoClients(t *testing.T) {
	placer := &fakePlacer{}
	srv := startServerConfig(t, Config{Placer: placer})

	results := make([]Placement, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for site := 0; site < 2; site++ {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[site], errs[site] = RendezvousPlaced(srv.Addr(), "hosted42", site, 5*time.Second)
		}()
	}
	wg.Wait()
	for site, err := range errs {
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
	}
	if results[0] != results[1] {
		t.Fatalf("sites got different placements: %+v vs %+v", results[0], results[1])
	}
	if results[0].Token == "" || results[0].Addr != "127.0.0.1:9999" {
		t.Fatalf("bad placement %+v", results[0])
	}
	placer.mu.Lock()
	defer placer.mu.Unlock()
	if placer.placings != 1 {
		t.Fatalf("Place called %d times for one session (retries must reuse the cached placement)", placer.placings)
	}
}

// TestPlacedRebindRenotifiesBothSites is the regression test for the lobby
// rebind-staleness bug: when a placed client re-JOINs from a new source
// address (NAT rebinding, network change), the server must overwrite the
// stored address, answer the *new* address with the same placement, and
// re-notify the peer — a naive placement cache that replied only on first
// placement, or replied to the stale stored address, left the moved client
// deaf and the relay pointed at a dead return path.
func TestPlacedRebindRenotifiesBothSites(t *testing.T) {
	placer := &fakePlacer{}
	srv := startServerConfig(t, Config{Placer: placer})

	// Both sites join from stable sockets and get placed.
	sock := func() *net.UDPConn {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	raddr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	join := func(c *net.UDPConn, site int) {
		if _, err := c.WriteTo([]byte(fmt.Sprintf("JOIN rebind %d", site)), raddr); err != nil {
			t.Fatal(err)
		}
	}
	awaitRelay := func(c *net.UDPConn) Placement {
		t.Helper()
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 256)
		for {
			n, _, err := c.ReadFrom(buf)
			if err != nil {
				t.Fatalf("no RELAY reply: %v", err)
			}
			if r, ok := parseReply(strings.TrimSpace(string(buf[:n]))); ok && r.Relay {
				return Placement{Token: r.Token, Addr: r.Addr}
			}
		}
	}
	s0, s1 := sock(), sock()
	join(s0, 0)
	join(s1, 1)
	p0, p1 := awaitRelay(s0), awaitRelay(s1)
	if p0 != p1 {
		t.Fatalf("initial placements differ: %+v vs %+v", p0, p1)
	}

	// Site 0 "moves": a new socket (new source address) re-JOINs.
	s0b := sock()
	join(s0b, 0)

	// The moved client must hear the same placement at its NEW address…
	pMoved := awaitRelay(s0b)
	if pMoved != p0 {
		t.Fatalf("placement changed across rebind: %+v vs %+v", pMoved, p0)
	}
	// …the peer must be re-notified…
	pPeer := awaitRelay(s1)
	if pPeer != p0 {
		t.Fatalf("peer re-notify placement mismatch: %+v vs %+v", pPeer, p0)
	}
	// …and the backend must have been told about the rebind.
	want := fmt.Sprintf("%s/0/%s", p0.Token, s0b.LocalAddr())
	waitFor(t, 2*time.Second, func() bool {
		placer.mu.Lock()
		defer placer.mu.Unlock()
		for _, r := range placer.rebinds {
			if r == want {
				return true
			}
		}
		return false
	})
}

// TestPlacedSessionReleaseOnExpiry: when the sweep expires a hosted session,
// the relay reservation is released.
func TestPlacedSessionReleaseOnExpiry(t *testing.T) {
	placer := &fakePlacer{}
	srv := startServerConfig(t, Config{TTL: 50 * time.Millisecond, SweepEvery: 10 * time.Millisecond, Placer: placer})

	results := make([]Placement, 2)
	var wg sync.WaitGroup
	for site := 0; site < 2; site++ {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[site], _ = RendezvousPlaced(srv.Addr(), "shortlived", site, 5*time.Second)
		}()
	}
	wg.Wait()
	waitFor(t, 2*time.Second, func() bool {
		placer.mu.Lock()
		defer placer.mu.Unlock()
		for _, tok := range placer.released {
			if tok == results[0].Token {
				return true
			}
		}
		return false
	})
}

// TestConcurrentJoinExpireStats hammers the server with >=1k interleaved
// JOIN/expire/Stats cycles; run under -race it pins down the locking of the
// handler, the ticker sweep, and the stats snapshot against each other.
func TestConcurrentJoinExpireStats(t *testing.T) {
	placer := &fakePlacer{}
	srv := startServerConfig(t, Config{
		TTL:         2 * time.Millisecond,
		SweepEvery:  time.Millisecond,
		MaxSessions: 64,
		Placer:      placer,
	})

	const (
		workers = 8
		cycles  = 150 // 8*150 = 1200 interleaved JOIN cycles
	)
	var wg, statsWg sync.WaitGroup
	stop := make(chan struct{})
	// Stats readers race the handler and the sweeper until the joiners are
	// done (their own WaitGroup — they only exit once stop closes).
	for i := 0; i < 2; i++ {
		statsWg.Add(1)
		go func() {
			defer statsWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := srv.Stats()
					if st.SessionsActive > 64 {
						t.Errorf("sessions map exceeded cap: %d", st.SessionsActive)
						return
					}
				}
			}
		}()
	}
	// Joiners drive the handler directly (no UDP loss, deterministic count);
	// sessions churn so the sweeper constantly expires behind them.
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				code := fmt.Sprintf("s%d-%d", w, c%40)
				addr := &net.UDPAddr{IP: net.IPv4(10, 0, byte(w), byte(c)), Port: 1000 + c}
				srv.handle(fmt.Sprintf("JOIN %s %d", code, c%2), addr)
				if c%50 == 0 {
					time.Sleep(time.Millisecond) // let the sweeper in
				}
			}
		}()
	}
	// A real socket client in the mix exercises the reply path end to end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = RendezvousPlaced(srv.Addr(), "s0-0", 1, 2*time.Second)
	}()
	wg.Wait()
	close(stop)
	statsWg.Wait()

	st := srv.Stats()
	if st.Joins < workers*cycles {
		t.Fatalf("Joins = %d, want >= %d", st.Joins, workers*cycles)
	}
	if st.SessionsActive > 64 {
		t.Fatalf("sessions map exceeded cap: %d", st.SessionsActive)
	}
}
