// Package lobby implements the rendezvous mechanism the paper assumes for
// session setup (§2: "Some rendezvous mechanism is required for them to find
// each other, such as instant messenger and games lobby") and, beyond the
// paper, the admission/placement control plane for relay-hosted sessions.
//
// The protocol is a minimal UDP exchange. A client announces itself with
//
//	JOIN <session> <site>
//
// and the server replies, once both players of <session> are known, with
// either
//
//	PEER <site> <addr>
//
// telling each client the other's public address so the clients talk
// directly (the lobby is not in the game path), or — when the server is
// configured with a Placer and decides to host the session on a relay —
//
//	RELAY <token> <addr>
//
// telling both clients to send their token-prefixed game traffic to the
// relay front at <addr>. Messages are plain text for easy debugging with
// netcat.
//
// Two operational rules matter at scale:
//
//   - Rebinds are control-plane events. A re-JOIN from a new source address
//     overwrites the stored address, re-notifies both sites, and (for placed
//     sessions) forwards the rebind to the Placer; the relay data path never
//     re-learns addresses on its own.
//   - Expiry is clock-driven, not traffic-driven. A background sweep runs on
//     a ticker (injectable Clock), so abandoned sessions age out even when
//     the socket goes quiet, and the sessions map is capped at MaxSessions.
package lobby

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"retrolock/internal/vclock"
)

// Placement is a relay assignment for one session: the opaque token clients
// prefix on every datagram and the relay front address they dial.
type Placement struct {
	Token string
	Addr  string
}

// Placer is the hosting backend the lobby admits sessions onto (in practice
// relay.LobbyPlacer around a relay daemon; a test double in tests).
//
// Place reserves capacity for one two-site session. Rebind tells the backend
// a site's public address changed (the only path that may move an active
// session's return address). Release frees the reservation when the lobby
// expires the session.
type Placer interface {
	Place() (Placement, error)
	Rebind(token string, site int, addr net.Addr) error
	Release(token string) error
}

// Config tunes a Server. The zero value means direct rendezvous with
// production defaults.
type Config struct {
	// TTL is how long an idle session entry survives. Default 10m.
	TTL time.Duration
	// SweepEvery is the background expiry cadence. Default 30s.
	SweepEvery time.Duration
	// MaxSessions bounds the sessions map; JOINs that would create an entry
	// beyond the cap are counted and dropped (the client retries and gets in
	// once a sweep frees space). Default 65536.
	MaxSessions int
	// Clock drives the sweep ticker and all timestamps. Default the system
	// clock; tests inject short real clocks or a virtual one.
	Clock vclock.Clock
	// Placer, when non-nil, turns the lobby into an admission control plane:
	// paired sessions are placed on the backend and answered with RELAY
	// instead of PEER.
	Placer Placer
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 10 * time.Minute
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 30 * time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 65536
	}
	if c.Clock == nil {
		c.Clock = vclock.System
	}
	return c
}

// session is one pending or hosted pairing.
type session struct {
	addrs    map[int]net.Addr // site -> announced address
	lastSeen time.Time
	placed   *Placement // non-nil once relay-hosted
}

// Server pairs clients by session code and, when configured with a Placer,
// admits them onto relay capacity.
type Server struct {
	pc  net.PacketConn
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	joins    int // well-formed JOINs handled
	notified int // PEER replies sent
	placed   int // RELAY replies sent
	rejected int // datagrams that failed to parse as JOIN
	expired  int // sessions dropped by the TTL sweep
	capped   int // JOINs dropped because the sessions map was full
	closed   bool
}

// Stats is a snapshot of the server's request counters.
type Stats struct {
	Joins          int // well-formed JOINs handled
	PeersNotified  int // PEER replies sent
	PlacedNotified int // RELAY replies sent
	Rejected       int // datagrams that failed to parse as JOIN
	SessionsActive int // session codes currently pending or hosted
	SessionsAged   int // sessions expired by the TTL sweep
	SessionsCapped int // JOINs dropped at the MaxSessions cap
}

// Stats returns the server's counters; safe to call while Serve runs.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Joins:          s.joins,
		PeersNotified:  s.notified,
		PlacedNotified: s.placed,
		Rejected:       s.rejected,
		SessionsActive: len(s.sessions),
		SessionsAged:   s.expired,
		SessionsCapped: s.capped,
	}
}

// Listen binds a lobby server to addr (e.g. ":7200") with default Config.
func Listen(addr string) (*Server, error) {
	return ListenConfig(addr, Config{})
}

// ListenConfig binds a lobby server to addr with explicit configuration.
func ListenConfig(addr string, cfg Config) (*Server, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("lobby: listen: %w", err)
	}
	return &Server{pc: pc, cfg: cfg.withDefaults(), sessions: make(map[string]*session)}, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.pc.LocalAddr().String() }

// Serve handles rendezvous requests until Close. It also starts the expiry
// sweeper, so idle sessions age out even if no datagram ever arrives again.
func (s *Server) Serve() error {
	go s.sweepLoop()
	buf := make([]byte, 256)
	for {
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("lobby: read: %w", err)
		}
		s.handle(strings.TrimSpace(string(buf[:n])), from)
	}
}

// parseJoin validates a JOIN request. Split out (and fuzzed) because this is
// the only code that touches attacker-controlled bytes before any state.
func parseJoin(msg string) (code string, site int, ok bool) {
	fields := strings.Fields(msg)
	if len(fields) != 3 || fields[0] != "JOIN" {
		return "", 0, false
	}
	site, err := strconv.Atoi(fields[2])
	if err != nil || site < 0 || site > 63 {
		return "", 0, false
	}
	return fields[1], site, true
}

// Reply is a parsed server reply, used by the client helpers.
type Reply struct {
	Relay bool   // RELAY reply (Token/Addr set) vs PEER reply (Site/Addr set)
	Site  int    // PEER: the site being described
	Token string // RELAY: session token
	Addr  string // peer or relay front address
}

// parseReply decodes a PEER or RELAY server reply.
func parseReply(msg string) (Reply, bool) {
	fields := strings.Fields(msg)
	if len(fields) != 3 {
		return Reply{}, false
	}
	switch fields[0] {
	case "PEER":
		site, err := strconv.Atoi(fields[1])
		if err != nil || site < 0 || site > 63 {
			return Reply{}, false
		}
		return Reply{Site: site, Addr: fields[2]}, true
	case "RELAY":
		if fields[1] == "" {
			return Reply{}, false
		}
		return Reply{Relay: true, Token: fields[1], Addr: fields[2]}, true
	}
	return Reply{}, false
}

func (s *Server) handle(msg string, from net.Addr) {
	code, site, ok := parseJoin(msg)
	if !ok {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.joins++
	now := s.cfg.Clock.Now()
	sess, exists := s.sessions[code]
	if !exists {
		if len(s.sessions) >= s.cfg.MaxSessions {
			// Try to make room before refusing admission.
			s.sweepLocked(now)
		}
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.capped++
			s.mu.Unlock()
			return
		}
		sess = &session{addrs: make(map[int]net.Addr)}
		s.sessions[code] = sess
	}
	sess.lastSeen = now
	prev := sess.addrs[site]
	sess.addrs[site] = from
	rebound := prev != nil && prev.String() != from.String()

	if s.cfg.Placer == nil {
		s.replyDirectLocked(sess)
		return // replyDirectLocked unlocks
	}
	s.replyPlacedLocked(code, sess, site, from, rebound) // unlocks
}

// replyDirectLocked is the paper's path: once two (or more) sites are
// present, tell everyone about everyone. A re-JOIN from a new address runs
// through here again, so both sites always hold the freshest peer address.
// Called with s.mu held; unlocks it.
func (s *Server) replyDirectLocked(sess *session) {
	type peerInfo struct {
		site int
		addr net.Addr
	}
	var peers []peerInfo
	if len(sess.addrs) >= 2 {
		for k, a := range sess.addrs {
			peers = append(peers, peerInfo{k, a})
		}
	}
	s.mu.Unlock()

	sent := 0
	for _, to := range peers {
		for _, other := range peers {
			if other.site == to.site {
				continue
			}
			reply := fmt.Sprintf("PEER %d %s", other.site, other.addr.String())
			_, _ = s.pc.WriteTo([]byte(reply), to.addr)
			sent++
		}
	}
	if sent > 0 {
		s.mu.Lock()
		s.notified += sent
		s.mu.Unlock()
	}
}

// replyPlacedLocked is the admission path: the first JOIN that completes the
// pair reserves relay capacity; every JOIN afterwards (including retries and
// rebinds) re-sends the cached placement to *both* sites at their current
// addresses. The placement is cached but the addresses are not assumed
// stable — answering only the first time, or answering stored-but-stale
// addresses, is exactly the rebind-staleness bug the regression tests pin.
// Called with s.mu held; unlocks it.
func (s *Server) replyPlacedLocked(code string, sess *session, site int, from net.Addr, rebound bool) {
	placer := s.cfg.Placer
	if sess.placed == nil && len(sess.addrs) >= 2 {
		p, err := placer.Place()
		if err != nil {
			// Backend full: drop the session so the map doesn't pin
			// unhostable pairs; clients retry and re-create it.
			delete(s.sessions, code)
			s.capped++
			s.mu.Unlock()
			return
		}
		sess.placed = &p
	}
	if sess.placed == nil {
		s.mu.Unlock()
		return // still waiting for the peer
	}
	p := *sess.placed
	type dest struct {
		site int
		addr net.Addr
	}
	var dests []dest
	for k, a := range sess.addrs {
		dests = append(dests, dest{k, a})
	}
	s.mu.Unlock()

	if rebound {
		// Control-plane rebind: the relay data path deliberately never
		// re-learns a slot address from traffic, so a moved client comes
		// back through here.
		_ = placer.Rebind(p.Token, site, from)
	}
	reply := []byte(fmt.Sprintf("RELAY %s %s", p.Token, p.Addr))
	sent := 0
	for _, d := range dests {
		_, _ = s.pc.WriteTo(reply, d.addr)
		sent++
	}
	if sent > 0 {
		s.mu.Lock()
		s.placed += sent
		s.mu.Unlock()
	}
}

// sweepLoop expires idle sessions on a ticker. Before this existed, expiry
// ran only inside the datagram handler — a quiet socket let abandoned
// sessions (and their relay reservations) live forever.
func (s *Server) sweepLoop() {
	for {
		s.cfg.Clock.Sleep(s.cfg.SweepEvery)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		released := s.sweepLocked(s.cfg.Clock.Now())
		s.mu.Unlock()
		for _, tok := range released {
			_ = s.cfg.Placer.Release(tok)
		}
	}
}

// sweepLocked drops sessions idle past the TTL and returns the tokens of
// placed ones so the caller can release their relay reservations outside the
// lock. Callers hold s.mu.
func (s *Server) sweepLocked(now time.Time) (released []string) {
	for c, old := range s.sessions {
		if now.Sub(old.lastSeen) > s.cfg.TTL {
			if old.placed != nil {
				released = append(released, old.placed.Token)
			}
			delete(s.sessions, c)
			s.expired++
		}
	}
	return released
}

// Close stops Serve and the sweeper.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.pc.Close()
}

// Rendezvous announces (session, site) to the lobby at serverAddr from a
// fresh UDP socket and waits until the peer's address is learned. It returns
// the local socket's address (to be reused for the game, so NAT bindings
// stay warm) and the peer address.
//
// The socket is unconnected; callers typically extract the local address,
// close it, and dial a connected socket toward peerAddr.
func Rendezvous(serverAddr, session string, site, peerSite int, timeout time.Duration) (localAddr, peerAddr string, err error) {
	localAddr, reply, err := rendezvous(serverAddr, session, site, timeout, func(r Reply) bool {
		return !r.Relay && r.Site == peerSite
	})
	if err != nil {
		return "", "", fmt.Errorf("lobby: timed out waiting for peer %d of session %q: %w", peerSite, session, err)
	}
	return localAddr, reply.Addr, nil
}

// RendezvousPlaced announces (session, site) and waits for a RELAY
// assignment from a placement-enabled lobby. The returned Placement names
// the relay front to dial and the token to prefix on every datagram.
func RendezvousPlaced(serverAddr, session string, site int, timeout time.Duration) (Placement, error) {
	_, reply, err := rendezvous(serverAddr, session, site, timeout, func(r Reply) bool {
		return r.Relay
	})
	if err != nil {
		return Placement{}, fmt.Errorf("lobby: timed out waiting for placement of session %q: %w", session, err)
	}
	return Placement{Token: reply.Token, Addr: reply.Addr}, nil
}

// rendezvous is the shared JOIN/await loop: re-announce every 200ms until a
// reply satisfying accept arrives or timeout elapses.
func rendezvous(serverAddr, session string, site int, timeout time.Duration, accept func(Reply) bool) (string, Reply, error) {
	raddr, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return "", Reply{}, fmt.Errorf("resolve %q: %w", serverAddr, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return "", Reply{}, fmt.Errorf("bind: %w", err)
	}
	defer sock.Close()
	localAddr := sock.LocalAddr().String()

	join := []byte(fmt.Sprintf("JOIN %s %d", session, site))
	deadline := time.Now().Add(timeout)
	buf := make([]byte, 256)
	for time.Now().Before(deadline) {
		if _, err := sock.WriteTo(join, raddr); err != nil {
			return "", Reply{}, fmt.Errorf("send join: %w", err)
		}
		_ = sock.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, _, err := sock.ReadFrom(buf)
		if err != nil {
			continue // timeout: re-announce
		}
		if r, ok := parseReply(strings.TrimSpace(string(buf[:n]))); ok && accept(r) {
			return localAddr, r, nil
		}
	}
	return "", Reply{}, fmt.Errorf("deadline exceeded")
}
