// Package lobby implements the rendezvous mechanism the paper assumes for
// session setup (§2: "Some rendezvous mechanism is required for them to find
// each other, such as instant messenger and games lobby").
//
// The protocol is a minimal UDP exchange. A client announces itself with
//
//	JOIN <session> <site>
//
// and the server replies, once both players of <session> are known, with
//
//	PEER <site> <addr>
//
// telling each client the other's public address, after which the clients
// talk directly (the lobby is not in the game path). Messages are plain text
// for easy debugging with netcat.
package lobby

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// sessionTTL is how long an idle session entry survives before the server
// forgets it; rendezvous retries re-create entries, so expiry only bounds
// memory against abandoned or hostile JOINs.
const sessionTTL = 10 * time.Minute

// Session is one pending pairing.
type session struct {
	addrs    map[int]net.Addr // site -> announced address
	lastSeen time.Time
}

// Server pairs clients by session code.
type Server struct {
	pc net.PacketConn

	mu       sync.Mutex
	sessions map[string]*session
	joins    int // well-formed JOINs handled
	notified int // PEER replies sent
	rejected int // datagrams that failed to parse as JOIN
	expired  int // sessions dropped by the TTL sweep
	closed   bool
	now      func() time.Time // test hook
}

// Stats is a snapshot of the server's request counters.
type Stats struct {
	Joins          int // well-formed JOINs handled
	PeersNotified  int // PEER replies sent
	Rejected       int // datagrams that failed to parse as JOIN
	SessionsActive int // session codes currently pending
	SessionsAged   int // sessions expired by the TTL sweep
}

// Stats returns the server's counters; safe to call while Serve runs.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Joins:          s.joins,
		PeersNotified:  s.notified,
		Rejected:       s.rejected,
		SessionsActive: len(s.sessions),
		SessionsAged:   s.expired,
	}
}

// Listen binds a lobby server to addr (e.g. ":7200").
func Listen(addr string) (*Server, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("lobby: listen: %w", err)
	}
	return &Server{pc: pc, sessions: make(map[string]*session), now: time.Now}, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.pc.LocalAddr().String() }

// Serve handles rendezvous requests until Close.
func (s *Server) Serve() error {
	buf := make([]byte, 256)
	for {
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("lobby: read: %w", err)
		}
		s.handle(strings.TrimSpace(string(buf[:n])), from)
	}
}

func (s *Server) handle(msg string, from net.Addr) {
	fields := strings.Fields(msg)
	if len(fields) != 3 || fields[0] != "JOIN" {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return
	}
	code := fields[1]
	site, err := strconv.Atoi(fields[2])
	if err != nil || site < 0 || site > 63 {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.joins++
	now := s.now()
	// Expire abandoned sessions so the map stays bounded.
	for c, old := range s.sessions {
		if now.Sub(old.lastSeen) > sessionTTL {
			delete(s.sessions, c)
			s.expired++
		}
	}
	sess, ok := s.sessions[code]
	if !ok {
		sess = &session{addrs: make(map[int]net.Addr)}
		s.sessions[code] = sess
	}
	sess.lastSeen = now
	sess.addrs[site] = from
	// Snapshot for reply outside the lock.
	type peerInfo struct {
		site int
		addr net.Addr
	}
	var peers []peerInfo
	if len(sess.addrs) >= 2 {
		for k, a := range sess.addrs {
			peers = append(peers, peerInfo{k, a})
		}
	}
	s.mu.Unlock()

	// Once two (or more) sites are present, tell everyone about everyone.
	sent := 0
	for _, to := range peers {
		for _, other := range peers {
			if other.site == to.site {
				continue
			}
			reply := fmt.Sprintf("PEER %d %s", other.site, other.addr.String())
			_, _ = s.pc.WriteTo([]byte(reply), to.addr)
			sent++
		}
	}
	if sent > 0 {
		s.mu.Lock()
		s.notified += sent
		s.mu.Unlock()
	}
}

// Close stops Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.pc.Close()
}

// Rendezvous announces (session, site) to the lobby at serverAddr from a
// fresh UDP socket and waits until the peer's address is learned. It returns
// the local socket (to be reused for the game, so NAT bindings stay warm)
// and the peer address.
//
// The socket is unconnected; callers typically extract the local address,
// close it, and dial a connected socket toward peerAddr.
func Rendezvous(serverAddr, session string, site, peerSite int, timeout time.Duration) (localAddr, peerAddr string, err error) {
	raddr, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return "", "", fmt.Errorf("lobby: resolve %q: %w", serverAddr, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return "", "", fmt.Errorf("lobby: bind: %w", err)
	}
	defer sock.Close()
	localAddr = sock.LocalAddr().String()

	join := []byte(fmt.Sprintf("JOIN %s %d", session, site))
	deadline := time.Now().Add(timeout)
	buf := make([]byte, 256)
	for time.Now().Before(deadline) {
		if _, err := sock.WriteTo(join, raddr); err != nil {
			return "", "", fmt.Errorf("lobby: send join: %w", err)
		}
		_ = sock.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, _, err := sock.ReadFrom(buf)
		if err != nil {
			continue // timeout: re-announce
		}
		fields := strings.Fields(string(buf[:n]))
		if len(fields) == 3 && fields[0] == "PEER" {
			got, convErr := strconv.Atoi(fields[1])
			if convErr == nil && got == peerSite {
				return localAddr, fields[2], nil
			}
		}
	}
	return "", "", fmt.Errorf("lobby: timed out waiting for peer %d of session %q", peerSite, session)
}
