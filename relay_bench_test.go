// Benchmarks for the relayd packet path, gated by benchcmp alongside the
// sync hot path: Route (token demux onto shard queues) and Shard.Step (the
// per-shard forward/flush cycle). Both report per-datagram cost and are
// expected to stay allocation-free in steady state — buffers recycle through
// the relay's pool, so a regression here shows up as allocs/op before it
// shows up as p99 frame time in production.
package retrolock_test

import (
	"fmt"
	"testing"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/obs"
	"retrolock/internal/obs/history"
	"retrolock/internal/relay"
)

// nullFront is a Front that discards sends; the benchmarks never Start the
// daemon, so Recv is never called.
type nullFront struct{}

func (nullFront) Recv(ms []relay.Message) (int, error) { select {} }
func (nullFront) Send(ms []relay.Message) (int, error) { return len(ms), nil }
func (nullFront) LocalAddr() string                    { return "null:0" }
func (nullFront) Close() error                         { return nil }

// benchRelayDaemon builds an unstarted daemon with nSessions placed and both
// site slots bound, returning the tokens and per-session site addresses.
// Stepping is done manually by the benchmark loop, standing in for the shard
// loops. cfg.MaxSessions is overridden to nSessions.
func benchRelayDaemon(b testing.TB, cfg relay.Config, nSessions int) (*relay.Daemon, []relay.Token, [][2]relay.Addr) {
	b.Helper()
	cfg.MaxSessions = nSessions
	d, err := relay.NewDaemon(cfg, []relay.Front{nullFront{}})
	if err != nil {
		b.Fatal(err)
	}
	toks := make([]relay.Token, nSessions)
	addrs := make([][2]relay.Addr, nSessions)
	for i := range toks {
		p, err := d.Place()
		if err != nil {
			b.Fatal(err)
		}
		toks[i] = p.Token
		addrs[i] = [2]relay.Addr{
			{Sim: fmt.Sprintf("A-%d", i)},
			{Sim: fmt.Sprintf("B-%d", i)},
		}
	}
	// Bind both slots of every session by routing one datagram per site from
	// its home address, exactly how a production relay learns NAT mappings.
	ms := make([]relay.Message, 1)
	for i, tok := range toks {
		for site := 0; site < 2; site++ {
			buf := make([]byte, relay.MaxDatagram)
			n := relay.PutHeader(buf, tok, site)
			ms[0] = relay.Message{Buf: buf[:n], Addr: addrs[i][site]}
			d.Route(ms, 1)
		}
	}
	for _, sh := range d.Shards() {
		sh.Step()
	}
	for _, sh := range d.Shards() {
		if sh.Active() == 0 && nSessions >= len(d.Shards()) {
			b.Fatalf("shard %s has no sessions after setup", sh.Addr())
		}
	}
	return d, toks, addrs
}

// benchRelayBatch pre-sizes a reusable receive batch. Route refills each
// handed-over slot from the buffer pool, so after the first pass every
// buffer in flight is pool-recycled and the loop allocates nothing.
func benchRelayBatch(batch int) []relay.Message {
	ms := make([]relay.Message, batch)
	for i := range ms {
		ms[i].Buf = make([]byte, relay.MaxDatagram)
	}
	return ms
}

// stampRelayBatch rewrites headers and payload for one receive batch,
// cycling datagrams across sessions and sites like interleaved client
// traffic.
func stampRelayBatch(ms []relay.Message, toks []relay.Token, addrs [][2]relay.Addr, round int) {
	const payload = 24 // typical input-sync datagram body
	for i := range ms {
		k := (round*len(ms) + i) % (2 * len(toks))
		tok, site := toks[k/2], k%2
		buf := ms[i].Buf[:relay.MaxDatagram]
		n := relay.PutHeader(buf, tok, site)
		ms[i].Buf = buf[:n+payload]
		ms[i].Addr = addrs[k/2][site]
	}
}

// BenchmarkRelayDemux measures the full reader-side packet path per
// datagram: Route's token demux across 8 shards plus each shard's
// Step (ingest, forward, flush). This is the figure the sessions-per-core
// capacity claim rests on.
func BenchmarkRelayDemux(b *testing.B) {
	const batch = 64
	d, toks, addrs := benchRelayDaemon(b, relay.Config{Shards: 8}, 256)
	defer d.Close()
	ms := benchRelayBatch(batch)
	shards := d.Shards()
	b.ReportAllocs()
	b.ResetTimer()
	for n, round := 0, 0; n < b.N; n, round = n+batch, round+1 {
		stampRelayBatch(ms, toks, addrs, round)
		d.Route(ms, batch)
		for _, sh := range shards {
			sh.Step()
		}
	}
}

// BenchmarkRelayShardStep isolates one shard's Step over a pre-filled
// 64-datagram queue — the event-loop body without the demux in front of it.
func BenchmarkRelayShardStep(b *testing.B) {
	const batch = 64
	d, toks, addrs := benchRelayDaemon(b, relay.Config{Shards: 1}, 64)
	defer d.Close()
	ms := benchRelayBatch(batch)
	sh := d.Shards()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for n, round := 0, 0; n < b.N; n, round = n+batch, round+1 {
		b.StopTimer()
		stampRelayBatch(ms, toks, addrs, round)
		d.Route(ms, batch)
		b.StartTimer()
		sh.Step()
	}
}

// BenchmarkRelayShardStepCaptured is BenchmarkRelayShardStep with an RKCP
// capture tap on the shard — the -capture relayd configuration. The tap
// records both the ingest and the forward of every datagram (two Record
// calls per relayed packet); the delta against the untapped benchmark is
// the full price of leaving capture on in production.
func BenchmarkRelayShardStepCaptured(b *testing.B) {
	const batch = 64
	// Sized like relayd's -capture tap; once the arena fills, recording
	// degrades to counted drops and the cost only goes down.
	tap := capture.NewRecorder(1<<16, 1<<24)
	d, toks, addrs := benchRelayDaemon(b, relay.Config{Shards: 1, Tap: tap}, 64)
	defer d.Close()
	ms := benchRelayBatch(batch)
	sh := d.Shards()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for n, round := 0, 0; n < b.N; n, round = n+batch, round+1 {
		b.StopTimer()
		stampRelayBatch(ms, toks, addrs, round)
		d.Route(ms, batch)
		b.StartTimer()
		sh.Step()
	}
}

// BenchmarkRelayShardStepStats is BenchmarkRelayShardStep with per-session
// stat blocks enabled (relayd's fleet-observability configuration, minus
// the anomaly rings): every ingested datagram updates its session's
// counters, inter-arrival and residence histograms inline. The delta
// against the plain benchmark is the price of making every hosted session
// individually gradeable — and it must stay 0 allocs/op.
func BenchmarkRelayShardStepStats(b *testing.B) {
	const batch = 64
	d, toks, addrs := benchRelayDaemon(b, relay.Config{Shards: 1, Stats: true}, 64)
	defer d.Close()
	ms := benchRelayBatch(batch)
	sh := d.Shards()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for n, round := 0, 0; n < b.N; n, round = n+batch, round+1 {
		b.StopTimer()
		stampRelayBatch(ms, toks, addrs, round)
		d.Route(ms, batch)
		b.StartTimer()
		sh.Step()
	}
}

// BenchmarkRelayShardStepStatsRing adds the per-session anomaly-capture
// rings on top of the stat blocks — the full -autocapture relayd
// configuration, each ring continuously evicting its oldest traffic to
// admit the newest.
func BenchmarkRelayShardStepStatsRing(b *testing.B) {
	const batch = 64
	d, toks, addrs := benchRelayDaemon(b,
		relay.Config{Shards: 1, Stats: true, AutoCaptureRecords: 64, AutoCaptureBytes: 8 << 10}, 64)
	defer d.Close()
	ms := benchRelayBatch(batch)
	sh := d.Shards()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for n, round := 0, 0; n < b.N; n, round = n+batch, round+1 {
		b.StopTimer()
		stampRelayBatch(ms, toks, addrs, round)
		d.Route(ms, batch)
		b.StartTimer()
		sh.Step()
	}
}

// TestRelayShardStepStatsDoesNotAllocate pins the acceptance criterion
// directly: Route + Step with per-session stats AND the anomaly ring
// attached allocates nothing in steady state. (The one churn-time
// allocation — republishing a shard's session table — happens only on
// register/close/expire, which the loop below never does.)
func TestRelayShardStepStatsDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("the race runtime drops sync.Pool puts at random, so the pooled buffer path allocates under -race by design")
	}
	const batch = 64
	d, toks, addrs := benchRelayDaemon(t,
		relay.Config{Shards: 1, Stats: true, AutoCaptureRecords: 64, AutoCaptureBytes: 8 << 10}, 64)
	defer d.Close()
	ms := benchRelayBatch(batch)
	sh := d.Shards()[0]
	round := 0
	step := func() {
		stampRelayBatch(ms, toks, addrs, round)
		round++
		d.Route(ms, batch)
		sh.Step()
	}
	for i := 0; i < 100; i++ { // reach steady-state pool/arena occupancy
		step()
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("relay packet path with stats+ring allocates %v per batch, want 0", allocs)
	}
}

// BenchmarkRelayShardStepHistory is BenchmarkRelayShardStepStats with the
// full PR-10 observability cadence riding each step: the fleet grader's
// verdict gauges registered on an obs registry, the history store retaining
// them at three resolutions, and a burn-rate rule evaluated every tick. In
// production the retention tick fires once per second, not once per batch —
// this benchmark deliberately overweights it so a regression in the
// sampling path is visible per shard step, and so the allocs/op gate pins
// the whole cadence at zero.
func BenchmarkRelayShardStepHistory(b *testing.B) {
	const batch = 64
	d, toks, addrs := benchRelayDaemon(b, relay.Config{Shards: 1, Stats: true}, 64)
	defer d.Close()
	fl, err := relay.NewFleet(d, relay.FleetConfig{Window: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	fl.Register(reg)
	svc := history.Wire(reg, history.Options{
		Rules: []history.Rule{{
			Name:   "fleet-session-health",
			Source: history.SourceGauge,
			Bad: []string{
				obs.Key(relay.MetricSessionVerdicts, obs.Labels{"state": "degraded"}),
				obs.Key(relay.MetricSessionVerdicts, obs.Labels{"state": "infeasible"}),
			},
			Total:      []string{relay.MetricSessionTracked},
			Budget:     0.05,
			FastWindow: time.Minute,
			SlowWindow: 5 * time.Minute,
		}},
	})
	ms := benchRelayBatch(batch)
	sh := d.Shards()[0]
	now := time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 64; i++ { // warm the rings past their first slot seals
		now = now.Add(time.Second)
		svc.Sample(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n, round := 0, 0; n < b.N; n, round = n+batch, round+1 {
		b.StopTimer()
		stampRelayBatch(ms, toks, addrs, round)
		d.Route(ms, batch)
		now = now.Add(time.Second)
		b.StartTimer()
		sh.Step()
		svc.Sample(now)
	}
}
