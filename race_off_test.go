//go:build !race

package retrolock_test

// raceEnabled reports whether this binary was built with -race; see
// race_on_test.go.
const raceEnabled = false
