module retrolock

go 1.22
