// Package retrolock is a reproduction of "An Approach to Sharing Legacy
// TV/Arcade Games for Real-Time Collaboration" (Zhao, Li, Gu, Shao, Gu —
// ICDCS 2009): a lockstep synchronization layer that turns deterministic
// single-computer game emulators into distributed two-player (and, with the
// journal extensions, N-player + spectator) games without modifying the
// games themselves.
//
// The repository is organized as a set of internal packages (see DESIGN.md
// for the full inventory):
//
//   - internal/core — the paper's contribution: SyncInput (Algorithm 2),
//     frame pacing (Algorithms 3-4), sessions, observers, late join.
//   - internal/vm, internal/rom — the deterministic RK-32 fantasy console
//     and its ROM toolchain + game library (the MAME substitute).
//   - internal/vclock, internal/simnet, internal/netem — the virtual-time
//     testbed (the Netem box substitute).
//   - internal/harness — regenerates the paper's Figures 1 and 2 plus the
//     extension experiments; see cmd/experiment and bench_test.go.
//
// The root package intentionally exports nothing; the executables under cmd/
// and the runnable examples under examples/ are the entry points.
package retrolock
