// Benchmarks that regenerate the paper's evaluation, one benchmark per
// figure/analysis. Timing-domain results (frame time, deviation, synchrony)
// are attached to each benchmark via ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced series alongside the usual ns/op. Full-length runs
// (3600 frames, the paper's one-minute experiments) execute in well under a
// second each thanks to the virtual-time testbed; use -short for a coarser,
// faster pass.
package retrolock_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"retrolock/internal/capture"
	"retrolock/internal/core"
	"retrolock/internal/flight"
	"retrolock/internal/harness"
	"retrolock/internal/netem"
	"retrolock/internal/obs"
	"retrolock/internal/replay"
	"retrolock/internal/rom/games"
	"retrolock/internal/simnet"
	"retrolock/internal/transport"
	"retrolock/internal/vclock"
)

// benchFrames returns the experiment length: the paper's 3600 frames, or
// 600 under -short.
func benchFrames(b *testing.B) int {
	if testing.Short() {
		return 600
	}
	return harness.DefaultFrames
}

func paperCfg(b *testing.B) harness.Config {
	cfg := harness.PaperCalibration()
	cfg.Frames = benchFrames(b)
	cfg.Seed = 2009
	return cfg
}

// benchRTTs is the sweep used by the figure benchmarks: dense around the
// paper's 140 ms threshold, sparse elsewhere.
var benchRTTs = []time.Duration{
	0,
	60 * time.Millisecond,
	100 * time.Millisecond,
	120 * time.Millisecond,
	140 * time.Millisecond,
	160 * time.Millisecond,
	180 * time.Millisecond,
	200 * time.Millisecond,
	300 * time.Millisecond,
	400 * time.Millisecond,
}

// BenchmarkFigure1 reproduces Figure 1: average frame time and average
// deviation (mean absolute deviation) per RTT, on site 0.
func BenchmarkFigure1(b *testing.B) {
	for _, rtt := range benchRTTs {
		rtt := rtt
		b.Run(fmt.Sprintf("rtt=%dms", rtt/time.Millisecond), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = rtt
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			s := last.Sites[0]
			b.ReportMetric(s.FrameTimes.Mean, "frame-ms")
			b.ReportMetric(s.FrameTimes.MAD, "deviation-ms")
			b.ReportMetric(s.FPS, "fps")
		})
	}
}

// BenchmarkFigure2 reproduces Figure 2: the average absolute frame-begin
// difference between the two sites per RTT.
func BenchmarkFigure2(b *testing.B) {
	for _, rtt := range benchRTTs {
		rtt := rtt
		b.Run(fmt.Sprintf("rtt=%dms", rtt/time.Millisecond), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = rtt
				cfg.Seed = 2010 // series 2 was a separate experiment run
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Sync.AbsMean, "sync-ms")
		})
	}
}

// BenchmarkAblationNaiveTimer quantifies §3.2's motivation: without
// Algorithm 4, the earlier-starting site suffers persistent frame-time
// fluctuation.
func BenchmarkAblationNaiveTimer(b *testing.B) {
	for _, naive := range []bool{false, true} {
		naive := naive
		name := "algorithm4"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 80 * time.Millisecond
				cfg.StartOffset = 120 * time.Millisecond
				cfg.SkipHandshake = true
				cfg.NaivePacer = naive
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Sites[0].FrameTimes.MAD, "earlier-site-MAD-ms")
			b.ReportMetric(last.Sync.AbsMean, "sync-ms")
		})
	}
}

// BenchmarkAblationTransport contrasts the paper's UDP lockstep with a
// reliable in-order (TCP-like) transport under loss (§3.1).
func BenchmarkAblationTransport(b *testing.B) {
	for _, arq := range []bool{false, true} {
		arq := arq
		name := "udp-lockstep"
		if arq {
			name = "reliable-arq"
		}
		b.Run(name, func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 60 * time.Millisecond
				cfg.Loss = 0.05
				cfg.ARQ = arq
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Sites[0].FrameTimes.MAD, "deviation-ms")
			b.ReportMetric(last.Sites[0].FrameTimes.Max, "worst-frame-ms")
		})
	}
}

// BenchmarkLossSweep is the journal version's packet-loss experiment.
func BenchmarkLossSweep(b *testing.B) {
	for _, loss := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		loss := loss
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 60 * time.Millisecond
				cfg.Loss = loss
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("diverged under loss")
				}
				last = res
			}
			b.ReportMetric(last.Sites[0].FrameTimes.Mean, "frame-ms")
			b.ReportMetric(last.Sync.AbsMean, "sync-ms")
		})
	}
}

// BenchmarkMultisite is the journal version's observers experiment.
func BenchmarkMultisite(b *testing.B) {
	for _, obs := range []int{0, 1, 2, 4} {
		obs := obs
		b.Run(fmt.Sprintf("observers=%d", obs), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 60 * time.Millisecond
				cfg.Observers = obs
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("observer diverged")
				}
				last = res
			}
			b.ReportMetric(last.Sites[0].FPS, "player-fps")
		})
	}
}

// BenchmarkLocalLagSensitivity sweeps BufFrame, the design constant §4.2
// argues should stay fixed at 6 (~100 ms): shorter lags shrink the tolerable
// RTT, longer ones tax responsiveness for nothing.
func BenchmarkLocalLagSensitivity(b *testing.B) {
	for _, lag := range []int{2, 4, 6, 9, 12} {
		lag := lag
		b.Run(fmt.Sprintf("bufframe=%d", lag), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 120 * time.Millisecond
				cfg.BufFrame = lag
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Sites[0].FrameTimes.MAD, "deviation-ms")
			b.ReportMetric(last.Sites[0].FPS, "fps")
		})
	}
}

// BenchmarkDeterminism measures pure replay speed: how fast the console
// re-executes a recorded session (the §5 determinism assumption, exercised
// at full tilt).
func BenchmarkDeterminism(b *testing.B) {
	for _, name := range games.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			console, err := games.MustLoad(name).Boot()
			if err != nil {
				b.Fatal(err)
			}
			rec := replay.NewRecorder(name, console, 0)
			rng := rand.New(rand.NewSource(1))
			for f := 0; f < 600; f++ {
				in := uint16(rng.Intn(0x10000))
				console.StepFrame(in)
				rec.OnFrame(in)
			}
			log := rec.Log()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fresh, err := games.MustLoad(name).Boot()
				if err != nil {
					b.Fatal(err)
				}
				if err := log.Verify(fresh); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Microbenchmarks of the building blocks --------------------------------

// BenchmarkVMStepFrame measures raw emulation speed of one game frame.
func BenchmarkVMStepFrame(b *testing.B) {
	for _, name := range games.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			console, err := games.MustLoad(name).Boot()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				console.StepFrame(uint16(i))
			}
		})
	}
}

// BenchmarkStateHash measures the convergence digest over the full 64 KiB
// machine state.
func BenchmarkStateHash(b *testing.B) {
	console, err := games.MustLoad("pong").Boot()
	if err != nil {
		b.Fatal(err)
	}
	console.StepFrame(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = console.StateHash()
	}
}

// BenchmarkSavestate measures snapshot serialization (late-join cost).
func BenchmarkSavestate(b *testing.B) {
	console, err := games.MustLoad("duel").Boot()
	if err != nil {
		b.Fatal(err)
	}
	console.StepFrame(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = console.Save()
	}
}

// BenchmarkStateHashIncremental measures the digest in its per-frame shape:
// one emulated frame dirties a handful of pages and the hash recomputes only
// those, instead of folding the full 64 KiB (BenchmarkStateHash's first-call
// cost).
func BenchmarkStateHashIncremental(b *testing.B) {
	console, err := games.MustLoad("pong").Boot()
	if err != nil {
		b.Fatal(err)
	}
	console.StepFrame(0)
	_ = console.StateHash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		console.StepFrame(uint16(i))
		_ = console.StateHash()
	}
}

// BenchmarkSavestateDelta measures capturing one frame of dirty pages as a
// delta savestate — the flight recorder's steady-state snapshot cost.
func BenchmarkSavestateDelta(b *testing.B) {
	console, err := games.MustLoad("duel").Boot()
	if err != nil {
		b.Fatal(err)
	}
	console.StepFrame(0)
	base := console.AppendSaveBase(nil)
	buf := make([]byte, 0, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		console.StepFrame(uint16(i))
		buf = console.AppendSaveDelta(buf[:0])
	}
}

// BenchmarkSyncInputNoWait measures the per-frame cost of Algorithm 2 when
// the remote inputs are already buffered (the common case below threshold).
func BenchmarkSyncInputNoWait(b *testing.B) {
	v := vclock.NewVirtual(time.Unix(0, 0))
	n := simnet.New(v)
	c0, c1, err := transport.SimPair(n, "a", "b")
	if err != nil {
		b.Fatal(err)
	}
	mk := func(site int, conn transport.Conn) *core.InputSync {
		s, err := core.NewInputSync(core.Config{SiteNo: site}, v, v.Now(),
			[]core.Peer{{Site: 1 - site, Conn: conn}})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	done := v.Go(func() {
		frame := 0
		step := func() bool {
			if _, err := s0.SyncInput(1, frame); err != nil {
				b.Error(err)
				return false
			}
			if _, err := s1.SyncInput(1<<8, frame); err != nil {
				b.Error(err)
				return false
			}
			frame++
			v.Sleep(16667 * time.Microsecond)
			return true
		}
		for i := 0; i < 300; i++ { // warm up scratch buffers and pools
			if !step() {
				return
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !step() {
				return
			}
		}
	})
	<-done
}

// stepClock is a hand-cranked clock for the hot-path benchmark: no
// scheduler, no goroutines, no allocation.
type stepClock struct{ t time.Time }

func (c *stepClock) Now() time.Time { return c.t }
func (c *stepClock) Sleep(d time.Duration) {
	if d > 0 {
		c.t = c.t.Add(d)
	}
}

// benchPipe is a lossless conn over preallocated slots, so the transport
// contributes zero allocations and the benchmark isolates the sync module.
type benchPipe struct {
	peer        *benchPipe
	slots       [][]byte
	head, count int
}

func newBenchPipePair() (*benchPipe, *benchPipe) {
	mk := func() *benchPipe {
		c := &benchPipe{slots: make([][]byte, 64)}
		for i := range c.slots {
			c.slots[i] = make([]byte, 0, 4096)
		}
		return c
	}
	a, b := mk(), mk()
	a.peer, b.peer = b, a
	return a, b
}

func (c *benchPipe) Send(p []byte) error {
	q := c.peer
	if q.count == len(q.slots) {
		return nil // full: drop, like UDP
	}
	i := (q.head + q.count) % len(q.slots)
	q.slots[i] = append(q.slots[i][:0], p...)
	q.count++
	return nil
}

func (c *benchPipe) TryRecv() ([]byte, bool) {
	if c.count == 0 {
		return nil, false
	}
	p := c.slots[c.head]
	c.head = (c.head + 1) % len(c.slots)
	c.count--
	return p, true
}

func (c *benchPipe) Close() error       { return nil }
func (c *benchPipe) LocalAddr() string  { return "bench" }
func (c *benchPipe) RemoteAddr() string { return "bench" }

// BenchmarkSyncHotPath measures the steady-state per-frame cost of the full
// send+receive wire path for a two-player frame (both sites), with -benchmem
// pinning the zero-allocation property: encode, decode and input buffering
// all run out of per-site scratch memory.
func BenchmarkSyncHotPath(b *testing.B) {
	clk := &stepClock{t: time.Unix(0, 0)}
	c0, c1 := newBenchPipePair()
	mk := func(site int, conn transport.Conn) *core.InputSync {
		s, err := core.NewInputSync(core.Config{SiteNo: site}, clk, clk.Now(),
			[]core.Peer{{Site: 1 - site, Conn: conn}})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	step := func(f int) {
		if _, err := s0.SyncInput(uint16(f)&0xFF, f); err != nil {
			b.Fatal(err)
		}
		if _, err := s1.SyncInput(uint16(f)<<8, f); err != nil {
			b.Fatal(err)
		}
		clk.Sleep(core.DefaultSendInterval)
	}
	frame := 0
	for ; frame < 300; frame++ { // warm-up to steady-state scratch sizes
		step(frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(frame)
		frame++
	}
}

// BenchmarkSyncHotPathTraced is BenchmarkSyncHotPath with the live
// observability bundle attached — tracer ring, histograms, counters. Run
// both with -benchmem to see that the instrumentation stays allocation-free
// and costs only a handful of nanoseconds per frame.
func BenchmarkSyncHotPathTraced(b *testing.B) {
	clk := &stepClock{t: time.Unix(0, 0)}
	c0, c1 := newBenchPipePair()
	reg := obs.NewRegistry()
	mk := func(site int, conn transport.Conn) *core.InputSync {
		s, err := core.NewInputSync(core.Config{SiteNo: site}, clk, clk.Now(),
			[]core.Peer{{Site: 1 - site, Conn: conn}})
		if err != nil {
			b.Fatal(err)
		}
		s.SetObs(core.NewSessionObs(reg, site, 1<<14, clk.Now()))
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	step := func(f int) {
		if _, err := s0.SyncInput(uint16(f)&0xFF, f); err != nil {
			b.Fatal(err)
		}
		if _, err := s1.SyncInput(uint16(f)<<8, f); err != nil {
			b.Fatal(err)
		}
		clk.Sleep(core.DefaultSendInterval)
	}
	frame := 0
	for ; frame < 300; frame++ { // warm-up to steady-state scratch sizes
		step(frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(frame)
		frame++
	}
}

// BenchmarkSyncHotPathSpans is BenchmarkSyncHotPath with input-journey span
// journals attached to both sites and per-frame exec reports flowing, i.e.
// the full cross-site tracing pipeline: pressed/sent/received/executed
// stamps, clock-offset estimation from echoes, and the derived latency and
// skew histogram observations. The CI allocation gate greps this benchmark's
// allocs/op — span recording must stay free on the hot path.
func BenchmarkSyncHotPathSpans(b *testing.B) {
	clk := &stepClock{t: time.Unix(0, 0)}
	c0, c1 := newBenchPipePair()
	reg := obs.NewRegistry()
	mk := func(site int, conn transport.Conn) *core.InputSync {
		s, err := core.NewInputSync(core.Config{SiteNo: site}, clk, clk.Now(),
			[]core.Peer{{Site: 1 - site, Conn: conn}})
		if err != nil {
			b.Fatal(err)
		}
		s.SetJournal(core.NewInputJourney(reg, site, clk.Now()))
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	step := func(f int) {
		now := clk.Now()
		s0.ReportExec(f, now)
		s1.ReportExec(f, now)
		if _, err := s0.SyncInput(uint16(f)&0xFF, f); err != nil {
			b.Fatal(err)
		}
		if _, err := s1.SyncInput(uint16(f)<<8, f); err != nil {
			b.Fatal(err)
		}
		clk.Sleep(core.DefaultSendInterval)
	}
	frame := 0
	for ; frame < 300; frame++ { // warm-up to steady-state scratch sizes
		step(frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(frame)
		frame++
	}
}

// BenchmarkSyncHotPathFlight measures the full steady-state frame loop —
// pacing, sync, real console emulation, state hashing — with the live
// observability bundle AND the black-box flight recorder attached, snapshot
// capture forced on every frame (SnapEvery = 1, far past the production
// cadence). With -benchmem it pins the recorder's zero-allocation property
// end to end; the CI allocation gate greps this benchmark's allocs/op.
func BenchmarkSyncHotPathFlight(b *testing.B) {
	clk := &stepClock{t: time.Unix(0, 0)}
	c0, c1 := newBenchPipePair()
	conns := [2]transport.Conn{c0, c1}
	game := games.MustLoad("pong")
	image := game.Encode()
	reg := obs.NewRegistry()
	var sessions [2]*core.Session
	for site := 0; site < 2; site++ {
		console, err := game.Boot()
		if err != nil {
			b.Fatal(err)
		}
		// Hash exchange off: the digest broadcast legitimately allocates its
		// message; RecordFrame still sees every frame's hash.
		s, err := core.NewSession(core.Config{SiteNo: site, HashInterval: -1}, clk, clk.Now(),
			console, []core.Peer{{Site: 1 - site, Conn: conns[site]}})
		if err != nil {
			b.Fatal(err)
		}
		s.SetObs(core.NewSessionObs(reg, site, 1<<14, clk.Now()))
		rec := flight.NewRecorder(console, flight.Options{
			Site: site, Game: "pong", ROM: image, Config: s.Sync().Config(),
			SnapEvery: 1, Snapshots: 4, Registry: reg,
		})
		s.SetFlightRecorder(rec)
		sessions[site] = s
	}
	inputs := [2]func(int) uint16{
		func(f int) uint16 { return uint16(f) & 0x00FF },
		func(f int) uint16 { return uint16(f) & 0x00FF << 8 },
	}
	step := func() {
		for site, s := range sessions {
			if err := s.RunFrames(1, inputs[site], nil); err != nil {
				b.Fatal(err)
			}
		}
		clk.Sleep(core.DefaultSendInterval)
	}
	for f := 0; f < 300; f++ { // warm-up to steady-state scratch sizes
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkNetemPlan measures the shaper's per-packet decision cost.
func BenchmarkNetemPlan(b *testing.B) {
	e := netem.New(netem.Config{
		Delay: 70 * time.Millisecond, Jitter: 5 * time.Millisecond,
		Loss: 0.05, Duplicate: 0.01, ProcDelay: 10 * time.Millisecond, Seed: 1,
	})
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Plan(now, 64)
	}
}

// BenchmarkHarnessRun measures a complete 600-frame two-site experiment —
// the unit of every figure point.
func BenchmarkHarnessRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.PaperCalibration()
		cfg.Frames = 600
		cfg.RTT = 100 * time.Millisecond
		cfg.Seed = int64(i)
		if _, err := harness.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRollback contrasts the paper's lockstep with the timewarp
// baseline it rejects in §5, quantifying the rollback costs (replayed
// frames, snapshot volume) that motivate that rejection — and the input
// latency rollback buys in exchange.
func BenchmarkAblationRollback(b *testing.B) {
	for _, rb := range []bool{false, true} {
		rb := rb
		name := "lockstep"
		if rb {
			name = "rollback"
		}
		b.Run(name, func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 120 * time.Millisecond
				cfg.Rollback = rb
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("diverged")
				}
				last = res
			}
			s := last.Sites[0]
			b.ReportMetric(s.FPS, "fps")
			b.ReportMetric(float64(s.Rollback.ReplayedFrames), "replayed-frames")
			b.ReportMetric(float64(s.Rollback.SnapshotBytes)/1e6, "snapshot-MB")
		})
	}
}

// BenchmarkAblationAdaptiveLag quantifies §4.2's fixed-vs-adaptive local lag
// argument at a steady WAN RTT.
func BenchmarkAblationAdaptiveLag(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		adaptive := adaptive
		name := "fixed-100ms"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 200 * time.Millisecond
				cfg.AdaptiveLag = adaptive
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			s := last.Sites[0]
			b.ReportMetric(s.FPS, "fps")
			b.ReportMetric(s.FrameTimes.MAD, "deviation-ms")
			if adaptive {
				b.ReportMetric(s.AvgLag, "avg-lag-frames")
			}
		})
	}
}

// BenchmarkBurstLoss contrasts independent and Gilbert-Elliott loss at the
// same long-run rate (journal extension).
func BenchmarkBurstLoss(b *testing.B) {
	for _, burst := range []bool{false, true} {
		burst := burst
		name := "independent"
		if burst {
			name = "bursty"
		}
		b.Run(name, func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 60 * time.Millisecond
				cfg.Loss = 0.05
				cfg.BurstLoss = burst
				cfg.MeanBurst = 6
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("diverged")
				}
				last = res
			}
			b.ReportMetric(last.Sites[0].FrameTimes.MAD, "deviation-ms")
			b.ReportMetric(last.Sites[0].FrameTimes.Max, "worst-frame-ms")
		})
	}
}

// BenchmarkBandwidth reports the uplink cost of the paper's 20ms message
// pacing (§4.2, §5: "the amount of data is not excessive").
func BenchmarkBandwidth(b *testing.B) {
	for _, ivl := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond} {
		ivl := ivl
		b.Run(fmt.Sprintf("interval=%v", ivl), func(b *testing.B) {
			var last *harness.Result
			for i := 0; i < b.N; i++ {
				cfg := paperCfg(b)
				cfg.RTT = 150 * time.Millisecond
				cfg.SendInterval = ivl
				res, err := harness.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			s := last.Sites[0]
			secs := last.Elapsed.Seconds()
			b.ReportMetric(float64(s.Stats.BytesSent)/1024/secs, "KB-per-s")
			b.ReportMetric(s.FrameTimes.MAD, "deviation-ms")
		})
	}
}

// BenchmarkSyncHotPathCaptured is BenchmarkSyncHotPath with an RKCP capture
// tap wrapped around both conns — the configuration a client runs when
// recording a session for replay. Compare against the untapped benchmark to
// see the tap's cost: one mutex round and one arena copy per datagram,
// zero allocations.
func BenchmarkSyncHotPathCaptured(b *testing.B) {
	clk := &stepClock{t: time.Unix(0, 0)}
	c0, c1 := newBenchPipePair()
	// Budgets sized so the arena keeps absorbing payloads for the whole
	// run; once full the tap degrades to counted drops, which cost less.
	rec := capture.NewRecorder(1<<20, 1<<26)
	mk := func(site int, conn transport.Conn) *core.InputSync {
		s, err := core.NewInputSync(core.Config{SiteNo: site}, clk, clk.Now(),
			[]core.Peer{{Site: 1 - site, Conn: transport.NewTap(conn, clk, site, rec)}})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s0, s1 := mk(0, c0), mk(1, c1)
	step := func(f int) {
		if _, err := s0.SyncInput(uint16(f)&0xFF, f); err != nil {
			b.Fatal(err)
		}
		if _, err := s1.SyncInput(uint16(f)<<8, f); err != nil {
			b.Fatal(err)
		}
		clk.Sleep(core.DefaultSendInterval)
	}
	frame := 0
	for ; frame < 300; frame++ { // warm-up to steady-state scratch sizes
		step(frame)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(frame)
		frame++
	}
}
