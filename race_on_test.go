//go:build race

package retrolock_test

// raceEnabled reports whether this binary was built with -race. Alloc
// regression tests that exercise sync.Pool-recycled paths skip under the
// race detector: its runtime intentionally drops a fraction of Pool.Put
// calls, so pooled paths allocate there by design, not by regression.
const raceEnabled = true
