// Benchmark for the history retention tick, gated by benchcmp alongside the
// sync and relay hot paths: one Store.Sample + Engine.Evaluate over a
// registry-sized series population. The tick rides daemon cadences (the
// frame loop in retroplay, the shard loop's ticker in relayd), so it must
// stay allocation-free in steady state — a regression here taxes every
// hosted session once per second.
package retrolock_test

import (
	"fmt"
	"testing"
	"time"

	"retrolock/internal/obs"
	"retrolock/internal/obs/history"
)

// benchHistoryService builds a store+engine shaped like a daemon's: 48
// scalar series, 8 histograms, and one two-window burn-rate rule, warmed
// past the first ring wraps so Sample touches only preallocated slots.
func benchHistoryService(b testing.TB) (*history.Store, *history.Engine, []*obs.Histogram, *time.Time) {
	b.Helper()
	store := history.NewStore(history.Config{Resolutions: []history.Resolution{
		{Step: time.Second, Slots: 300},
		{Step: 10 * time.Second, Slots: 360},
		{Step: time.Minute, Slots: 480},
	}})
	var cum float64
	for i := 0; i < 24; i++ {
		store.TrackCounter(fmt.Sprintf("ctr_%d", i), func() float64 { return cum })
		store.TrackGauge(fmt.Sprintf("g_%d", i), func() float64 { return cum })
	}
	hists := make([]*obs.Histogram, 8)
	for i := range hists {
		hists[i] = &obs.Histogram{}
		store.TrackHistogram(fmt.Sprintf("h_%d", i), hists[i])
	}
	engine := history.NewEngine(store, []history.Rule{{
		Name: "bench", Source: history.SourceCounter,
		Bad: []string{"ctr_0"}, Total: []string{"ctr_1"},
		Budget: 0.01, FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
	}})
	now := new(time.Time)
	*now = time.Date(2009, 6, 22, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 64; i++ {
		cum += 17
		for _, h := range hists {
			h.Observe(int64(i) * 1000)
		}
		*now = now.Add(time.Second)
		store.Sample(*now)
		engine.Evaluate(*now)
	}
	_ = cum
	return store, engine, hists, now
}

// BenchmarkHistorySample is the retention tick end to end: fold one base
// sample of every tracked series into all three rings, then close one
// burn-rate evaluation window. 0 allocs/op is the acceptance criterion.
func BenchmarkHistorySample(b *testing.B) {
	store, engine, hists, now := benchHistoryService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		hists[n%len(hists)].Observe(int64(n))
		*now = now.Add(time.Second)
		store.Sample(*now)
		engine.Evaluate(*now)
	}
}
